#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace dds::core {
namespace {

TEST(ChunkAssignment, BlockPartitionTilesExactly) {
  for (const std::uint64_t n : {8ULL, 100ULL, 101ULL, 1000ULL}) {
    for (const int w : {1, 2, 3, 7, 8}) {
      if (n < static_cast<std::uint64_t>(w)) continue;
      const ChunkAssignment a(n, w, Placement::Block);
      std::uint64_t total = 0;
      std::uint64_t expect_first = 0;
      for (int g = 0; g < w; ++g) {
        const auto ids = a.ids_of(g);
        EXPECT_EQ(ids.size(), a.chunk_size(g));
        EXPECT_EQ(ids.front(), expect_first);
        expect_first = ids.back() + 1;
        total += ids.size();
        for (const auto id : ids) EXPECT_EQ(a.owner_of(id), g);
      }
      EXPECT_EQ(total, n);
    }
  }
}

TEST(ChunkAssignment, RoundRobinPartition) {
  const ChunkAssignment a(10, 3, Placement::RoundRobin);
  EXPECT_EQ(a.ids_of(0), (std::vector<std::uint64_t>{0, 3, 6, 9}));
  EXPECT_EQ(a.ids_of(1), (std::vector<std::uint64_t>{1, 4, 7}));
  EXPECT_EQ(a.ids_of(2), (std::vector<std::uint64_t>{2, 5, 8}));
  EXPECT_EQ(a.chunk_size(0), 4u);
  EXPECT_EQ(a.chunk_size(1), 3u);
  EXPECT_EQ(a.owner_of(7), 1);
  EXPECT_EQ(a.local_index(7), 2u);
}

TEST(ChunkAssignment, LocalIndexMatchesStorageOrder) {
  for (const auto placement : {Placement::Block, Placement::RoundRobin}) {
    const ChunkAssignment a(37, 5, placement);
    for (int g = 0; g < 5; ++g) {
      const auto ids = a.ids_of(g);
      for (std::size_t pos = 0; pos < ids.size(); ++pos) {
        EXPECT_EQ(a.local_index(ids[pos]), pos);
      }
    }
  }
}

TEST(ChunkAssignment, BlockChunkSizesBalanced) {
  const ChunkAssignment a(1000, 7, Placement::Block);
  for (int g = 0; g < 7; ++g) {
    EXPECT_NEAR(static_cast<double>(a.chunk_size(g)), 1000.0 / 7, 1.0);
  }
}

TEST(ChunkAssignment, InvalidArgsThrow) {
  EXPECT_THROW(ChunkAssignment(10, 0, Placement::Block), InternalError);
  EXPECT_THROW(ChunkAssignment(3, 5, Placement::Block), InternalError);
  const ChunkAssignment a(10, 2, Placement::Block);
  EXPECT_THROW(a.owner_of(10), InternalError);
}

TEST(DataRegistry, BuildAssignsOffsetsAndOwners) {
  const ChunkAssignment a(5, 2, Placement::Block);
  // Owner 0 holds ids {0,1}, owner 1 holds {2,3,4}.
  const std::vector<std::uint32_t> lengths = {10, 20, 30, 40, 50};
  const std::vector<std::size_t> counts = {2, 3};
  const auto reg = DataRegistry::build(a, lengths, counts);

  EXPECT_EQ(reg->num_samples(), 5u);
  EXPECT_EQ(reg->lookup(0).owner, 0u);
  EXPECT_EQ(reg->lookup(0).offset, 0u);
  EXPECT_EQ(reg->lookup(1).offset, 10u);
  EXPECT_EQ(reg->lookup(2).owner, 1u);
  EXPECT_EQ(reg->lookup(2).offset, 0u);
  EXPECT_EQ(reg->lookup(4).offset, 70u);
  EXPECT_EQ(reg->lookup(4).length, 50u);
  EXPECT_EQ(reg->chunk_bytes(0), 30u);
  EXPECT_EQ(reg->chunk_bytes(1), 120u);
  EXPECT_EQ(reg->total_bytes(), 150u);
}

TEST(DataRegistry, RoundRobinOffsets) {
  const ChunkAssignment a(4, 2, Placement::RoundRobin);
  // Owner 0: ids {0, 2} lengths {5, 7}; owner 1: ids {1, 3} lengths {6, 8}.
  const std::vector<std::uint32_t> lengths = {5, 7, 6, 8};
  const std::vector<std::size_t> counts = {2, 2};
  const auto reg = DataRegistry::build(a, lengths, counts);
  EXPECT_EQ(reg->lookup(2).owner, 0u);
  EXPECT_EQ(reg->lookup(2).offset, 5u);
  EXPECT_EQ(reg->lookup(3).owner, 1u);
  EXPECT_EQ(reg->lookup(3).offset, 6u);
}

TEST(DataRegistry, MismatchedCountsThrow) {
  const ChunkAssignment a(5, 2, Placement::Block);
  const std::vector<std::uint32_t> lengths = {10, 20, 30, 40, 50};
  const std::vector<std::size_t> bad_counts = {3, 2};  // placement says 2,3
  EXPECT_THROW(DataRegistry::build(a, lengths, bad_counts), InternalError);
  const std::vector<std::size_t> short_counts = {2};
  EXPECT_THROW(DataRegistry::build(a, lengths, short_counts), InternalError);
}

TEST(DataRegistry, LookupOutOfRangeThrows) {
  const ChunkAssignment a(2, 2, Placement::Block);
  const std::vector<std::uint32_t> lengths = {1, 1};
  const std::vector<std::size_t> counts = {1, 1};
  const auto reg = DataRegistry::build(a, lengths, counts);
  EXPECT_THROW(reg->lookup(2), InternalError);
}

}  // namespace
}  // namespace dds::core
