// Tiered-store tests: the hot/cold Layout partition, byte identity of
// delivered samples across hot fractions (tiering changes *when* bytes
// arrive, never *which* bytes), staging-queue accounting and backpressure,
// admission policies, the reset_stats contract (staged-set warmth is
// state, not a statistic), and TieredConfig validation.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/ddstore.hpp"
#include "datagen/dataset.hpp"
#include "formats/cff.hpp"

namespace dds::core {
namespace {

using datagen::DatasetKind;
using model::test_machine;

constexpr std::uint64_t kSamples = 64;

class TieredStoreTest : public ::testing::Test {
 protected:
  TieredStoreTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/4),
        ds_(datagen::make_dataset(DatasetKind::AisdHomoLumo, kSamples, 7)) {
    formats::CffWriter::stage(fs_, "cff/ds", *ds_, 2);
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  formats::CffReader cff_reader() {
    return formats::CffReader(fs_, "cff/ds",
                              ds_->spec().nominal_cff_sample_bytes());
  }

  static DDStoreConfig tiered_config(double hot_fraction, int depth = 8) {
    DDStoreConfig cfg;
    cfg.tiered.hot_fraction = hot_fraction;
    cfg.tiered.staging_depth = depth;
    return cfg;
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
};

// ---- configuration validation --------------------------------------------

TEST_F(TieredStoreTest, RejectsOutOfRangeHotFraction) {
  const auto reader = cff_reader();
  for (const double bad : {0.0, -0.25, 1.5}) {
    simmpi::Runtime rt(1, machine_);
    EXPECT_THROW(rt.run([&](simmpi::Comm& c) {
                   auto client = client_for(c);
                   DDStore store(c, reader, client, tiered_config(bad));
                 }),
                 ConfigError)
        << "hot_fraction " << bad;
  }
}

TEST_F(TieredStoreTest, RejectsNonPositiveStagingDepth) {
  const auto reader = cff_reader();
  for (const int bad : {0, -3}) {
    simmpi::Runtime rt(1, machine_);
    EXPECT_THROW(rt.run([&](simmpi::Comm& c) {
                   auto client = client_for(c);
                   DDStore store(c, reader, client, tiered_config(0.5, bad));
                 }),
                 ConfigError)
        << "staging_depth " << bad;
  }
}

TEST_F(TieredStoreTest, DefaultConfigHasNoStagingStage) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStore store(c, reader, client);
    EXPECT_EQ(store.staging(), nullptr);
    EXPECT_FALSE(store.layout().tiered());
    // Every sample is hot; no tier counter was ever registered, so the
    // stats view reads zeros through the registry's missing-name fallback.
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      EXPECT_TRUE(store.layout().is_hot(id));
    }
    (void)store.get_bytes(0);
    EXPECT_EQ(store.stats().cold_misses, 0u);
    EXPECT_EQ(store.stats().staged_bytes, 0u);
  });
}

// ---- the hot/cold Layout partition ---------------------------------------

TEST_F(TieredStoreTest, HotSamplesFormAStoragePrefix) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStore store(c, reader, client, tiered_config(0.5));
    const Layout& layout = store.layout();
    ASSERT_TRUE(layout.tiered());
    EXPECT_DOUBLE_EQ(layout.hot_fraction(), 0.5);
    for (int owner = 0; owner < layout.width(); ++owner) {
      const std::uint64_t budget = layout.hot_bytes(owner);
      EXPECT_LE(budget, layout.chunk_bytes(owner));
      EXPECT_GT(budget, 0u);
      // Walking the chunk in storage order, hotness must flip at most once
      // (hot prefix, cold suffix) and agree with the per-owner summaries.
      bool seen_cold = false;
      std::uint64_t hot_count = 0, hot_bytes = 0;
      for (const std::uint64_t id : layout.assignment().ids_of(owner)) {
        if (layout.is_hot(id)) {
          EXPECT_FALSE(seen_cold) << "hot sample after a cold one";
          ++hot_count;
          hot_bytes += layout.registry().lookup(id).length;
        } else {
          seen_cold = true;
        }
      }
      EXPECT_EQ(hot_count, layout.hot_samples_of(owner));
      EXPECT_EQ(hot_bytes, layout.hot_prefix_bytes(owner));
      EXPECT_LE(hot_bytes, budget);
      EXPECT_LT(hot_count, layout.assignment().chunk_size(owner))
          << "a 0.5 hot fraction must leave some samples cold";
    }
  });
}

// ---- byte identity across hot fractions ----------------------------------

TEST_F(TieredStoreTest, SamplesAreByteIdenticalAcrossHotFractions) {
  const auto reader = cff_reader();
  for (const double hf : {1.0, 0.5, 0.25}) {
    simmpi::Runtime rt(4, machine_);
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      DDStoreConfig cfg = tiered_config(hf);
      cfg.batch_fetch = BatchFetchMode::Coalesced;
      DDStore store(c, reader, client, cfg);
      // Single-sample path.
      for (std::uint64_t id = 0; id < kSamples; ++id) {
        EXPECT_EQ(store.get(id), ds_->make(id))
            << "hot_fraction " << hf << " id " << id;
      }
      // Planned-batch path, duplicates included.
      const std::vector<std::uint64_t> ids = {3, 60, 19, 42, 7, 42, 3, 25};
      const auto batch = store.get_batch(ids);
      ASSERT_EQ(batch.size(), ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(batch[i], ds_->make(ids[i])) << "hot_fraction " << hf;
      }
    });
  }
}

// ---- staging accounting ---------------------------------------------------

TEST_F(TieredStoreTest, ColdReadsAreCountedAndPromoted) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg = tiered_config(0.25);
    // The auto staged-set budget is the rank's own cold complement; this
    // sweep touches every owner's cold samples, so size the set explicitly
    // to observe promotion without LRU thrash.
    cfg.tiered.staged_set_bytes = 4 * MiB;
    DDStore store(c, reader, client, cfg);
    ASSERT_NE(store.staging(), nullptr);
    std::uint64_t cold = 0;
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      if (!store.layout().is_hot(id)) ++cold;
      (void)store.get_bytes(id);
    }
    ASSERT_GT(cold, 0u);
    const auto& st = store.stats();
    EXPECT_EQ(st.cold_misses, cold);
    EXPECT_GT(st.staged_bytes, 0u);
    EXPECT_EQ(st.staged_hits, 0u);  // first pass: every cold id missed
    // Promote admission: drained samples landed in the staged set, so a
    // second pass over the same ids is all staged hits, no device reads.
    EXPECT_GT(store.staging()->staged_set().entries(), 0u);
    for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get_bytes(id);
    EXPECT_EQ(store.stats().cold_misses, cold);  // unchanged
    EXPECT_GT(store.stats().staged_hits, 0u);
    EXPECT_EQ(store.staging()->inflight(), 0u);
  });
}

TEST_F(TieredStoreTest, TransientAdmissionNeverPromotes) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg = tiered_config(0.25);
    cfg.tiered.admission = TierAdmission::Transient;
    DDStore store(c, reader, client, cfg);
    for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get_bytes(id);
    const std::uint64_t first_pass = store.stats().cold_misses;
    ASSERT_GT(first_pass, 0u);
    EXPECT_EQ(store.staging()->staged_set().entries(), 0u);
    // Pure streaming: the second pass pays the cold tier again.
    for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get_bytes(id);
    EXPECT_EQ(store.stats().cold_misses, 2 * first_pass);
    EXPECT_EQ(store.stats().staged_hits, 0u);
  });
}

TEST_F(TieredStoreTest, ShallowQueueBackpressuresAndCostsMore) {
  const auto reader = cff_reader();
  const auto epoch_seconds = [&](int depth) {
    double elapsed = 0.0;
    simmpi::Runtime rt(4, machine_);
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      DDStoreConfig cfg = tiered_config(0.25, depth);
      cfg.batch_fetch = BatchFetchMode::Coalesced;
      DDStore store(c, reader, client, cfg);
      std::vector<std::uint64_t> ids(kSamples);
      for (std::uint64_t id = 0; id < kSamples; ++id) ids[id] = id;
      const double t0 = c.clock().now();
      (void)store.get_batch(ids);
      if (c.rank() == 0) {
        elapsed = c.clock().now() - t0;
        EXPECT_EQ(store.stats().stage_backpressure_delays > 0, depth == 1)
            << "depth " << depth;
      }
    });
    return elapsed;
  };
  // 64 ids -> 48 cold misses per batch: depth 64 never fills its issue
  // window (no backpressure), depth 1 serializes every read.
  const double deep = epoch_seconds(64);
  const double shallow = epoch_seconds(1);
  EXPECT_GT(deep, 0.0);
  // A depth-1 queue serializes every device read; a deep queue overlaps
  // them behind the batch's hot RMA transfers.
  EXPECT_GT(shallow, deep);
}

TEST_F(TieredStoreTest, ColdMissIsSlowerThanHotFetchAndStagedHitIsCheap) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStore store(c, reader, client, tiered_config(0.5));
    const Layout& layout = store.layout();
    std::uint64_t hot_id = kSamples, cold_id = kSamples;
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      if (layout.is_hot(id)) {
        hot_id = id;
      } else if (cold_id == kSamples) {
        cold_id = id;
      }
    }
    ASSERT_LT(hot_id, kSamples);
    ASSERT_LT(cold_id, kSamples);
    const auto timed = [&](std::uint64_t id) {
      const double t0 = c.clock().now();
      (void)store.get_bytes(id);
      return c.clock().now() - t0;
    };
    const double hot = timed(hot_id);
    const double cold_miss = timed(cold_id);
    const double staged_hit = timed(cold_id);
    EXPECT_GT(cold_miss, hot) << "a storage read must cost more than RMA";
    EXPECT_LT(staged_hit, cold_miss);
    EXPECT_GT(staged_hit, 0.0);
  });
}

// ---- reset_stats contract -------------------------------------------------

TEST_F(TieredStoreTest, ResetStatsPreservesStagedSetWarmth) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStore store(c, reader, client, tiered_config(0.25));
    for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get_bytes(id);
    ASSERT_GT(store.stats().cold_misses, 0u);
    const std::size_t warm_entries = store.staging()->staged_set().entries();
    const auto warm_ids = store.staging()->staged_set().ids_mru_to_lru();
    ASSERT_GT(warm_entries, 0u);

    store.reset_stats();

    // Tier counters are statistics: zeroed...
    const auto& st = store.stats();
    EXPECT_EQ(st.cold_misses, 0u);
    EXPECT_EQ(st.staged_hits, 0u);
    EXPECT_EQ(st.staged_bytes, 0u);
    EXPECT_EQ(st.stage_backpressure_delays, 0u);
    // ...but the staged set is state, exactly like cache warmth: contents
    // and recency survive, so a staged id hits without a device read.
    EXPECT_EQ(store.staging()->staged_set().entries(), warm_entries);
    EXPECT_EQ(store.staging()->staged_set().ids_mru_to_lru(), warm_ids);
    (void)store.get_bytes(warm_ids.front());
    EXPECT_EQ(store.stats().staged_hits, 1u);
    EXPECT_EQ(store.stats().cold_misses, 0u);
  });
}

}  // namespace
}  // namespace dds::core
