// Tests for the DDStore design-space knobs: two-sided vs one-sided
// communication, lock amortization, and the NVMe-staged backend.
#include <gtest/gtest.h>

#include "datagen/dataset.hpp"
#include "formats/cff.hpp"
#include "train/backend.hpp"

namespace dds::core {
namespace {

using datagen::DatasetKind;
using model::test_machine;

constexpr std::uint64_t kSamples = 48;

class ModesTest : public ::testing::Test {
 protected:
  ModesTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/2),
        ds_(datagen::make_dataset(DatasetKind::AisdHomoLumo, kSamples, 5)) {
    formats::CffWriter::stage(fs_, "cff", *ds_, 2);
    reader_ = std::make_unique<formats::CffReader>(
        fs_, "cff", ds_->spec().nominal_cff_sample_bytes());
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
  std::unique_ptr<formats::CffReader> reader_;
};

TEST_F(ModesTest, TwoSidedModeReturnsCorrectData) {
  simmpi::Runtime rt(4, machine_);
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.comm_mode = CommMode::TwoSided;
    DDStore store(c, *reader_, client, cfg);
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      EXPECT_EQ(store.get(id), ds_->make(id)) << "sample " << id;
    }
  });
}

TEST_F(ModesTest, TwoSidedSlowerThanRmaWithSlowBroker) {
  double rma_time = 0, two_sided_time = 0;
  for (const bool two_sided : {false, true}) {
    simmpi::Runtime rt(4, machine_);
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      DDStoreConfig cfg;
      if (two_sided) {
        cfg.comm_mode = CommMode::TwoSided;
        cfg.broker_poll_mean_s = 5e-3;  // broker polls between steps
      }
      DDStore store(c, *reader_, client, cfg);
      c.barrier();
      c.clock().reset();
      for (std::uint64_t id = 0; id < kSamples; ++id) store.get(id);
      const double t = c.allreduce(c.clock().now(), simmpi::Op::Max);
      if (c.rank() == 0) (two_sided ? two_sided_time : rma_time) = t;
    });
  }
  EXPECT_GT(two_sided_time, rma_time);
}

TEST_F(ModesTest, TwoSidedLocalFetchSkipsBroker) {
  simmpi::Runtime rt(2, machine_);
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.comm_mode = CommMode::TwoSided;
    cfg.broker_poll_mean_s = 10e-3;
    DDStore store(c, *reader_, client, cfg);
    std::uint64_t local_id = 0;
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      if (store.is_local(id)) local_id = id;
    }
    const double t0 = c.clock().now();
    store.get(local_id);
    // Local fetches never traverse the broker.
    EXPECT_LT(c.clock().now() - t0, 1e-3);
  });
}

TEST_F(ModesTest, LockPerTargetBatchIsCheaperThanPerSample) {
  double per_sample = 0, per_target = 0;
  for (const bool amortize : {false, true}) {
    simmpi::Runtime rt(4, machine_);
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      DDStoreConfig cfg;
      cfg.batch_fetch = amortize ? BatchFetchMode::LockPerTarget
                                 : BatchFetchMode::PerSample;
      DDStore store(c, *reader_, client, cfg);
      c.barrier();
      c.clock().reset();
      std::vector<std::uint64_t> ids;
      for (std::uint64_t id = 0; id < kSamples; ++id) ids.push_back(id);
      const auto batch = store.get_batch(ids);
      for (std::uint64_t id = 0; id < kSamples; ++id) {
        EXPECT_EQ(batch[id], ds_->make(id));
      }
      const double t = c.allreduce(c.clock().now(), simmpi::Op::Max);
      if (c.rank() == 0) (amortize ? per_target : per_sample) = t;
    });
  }
  EXPECT_LT(per_target, per_sample);
  // The saving is bounded by the lock fraction of the software overhead.
  EXPECT_GT(per_target, per_sample * (1.0 - machine_.net.rma_lock_fraction));
}

TEST_F(ModesTest, NvmeBackendRoundTripAndWarmup) {
  fs::NvmeParams nvme;
  nvme.capacity_bytes = 1 << 20;
  fs::NvmeTier tier(nvme, 2);
  simmpi::Runtime rt(2, machine_);
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    const int node = machine_.node_of_rank(c.world_rank());
    train::NvmeStagedBackend backend(*reader_, client, tier, node);
    // Ranks share a node (and therefore the NVMe device), so each rank
    // works a disjoint id range — otherwise one rank's cold pass would
    // pre-warm the other's.
    const std::uint64_t lo = kSamples / 2 * static_cast<std::uint64_t>(c.rank());
    const std::uint64_t hi = lo + kSamples / 2;
    double cold = 0, warm = 0;
    {
      const double t0 = c.clock().now();
      for (std::uint64_t id = lo; id < hi; ++id) {
        EXPECT_EQ(backend.load(id), ds_->make(id));
      }
      cold = c.clock().now() - t0;
    }
    // Warm pass: same samples now resident on the node's device.
    {
      const double t0 = c.clock().now();
      for (std::uint64_t id = lo; id < hi; ++id) {
        EXPECT_EQ(backend.load(id), ds_->make(id));
      }
      warm = c.clock().now() - t0;
    }
    EXPECT_LT(warm, cold);
  });
}

TEST_F(ModesTest, RawReadsMatchTimedReads) {
  simmpi::Runtime rt(1, machine_);
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    for (std::uint64_t id = 0; id < kSamples; id += 5) {
      EXPECT_EQ(reader_->read_bytes_raw(id), reader_->read_bytes(id, client));
    }
  });
}

}  // namespace
}  // namespace dds::core
