// Property sweep: DDStore must return byte-identical samples for every
// combination of rank count, width, placement, and communication mode.
#include <gtest/gtest.h>

#include <tuple>

#include "core/ddstore.hpp"
#include "datagen/dataset.hpp"
#include "formats/cff.hpp"

namespace dds::core {
namespace {

using datagen::DatasetKind;
using model::test_machine;

using Config = std::tuple<int /*nranks*/, int /*width*/, Placement, CommMode>;

class DDStoreSweep : public ::testing::TestWithParam<Config> {};

TEST_P(DDStoreSweep, EveryRankReadsEverySampleCorrectly) {
  const auto [nranks, width, placement, comm_mode] = GetParam();
  const auto machine = test_machine();
  constexpr std::uint64_t kSamples = 60;

  fs::ParallelFileSystem pfs(machine.fs, machine.nodes_for_ranks(nranks));
  const auto ds =
      datagen::make_dataset(DatasetKind::AisdExDiscrete, kSamples, 13);
  formats::CffWriter::stage(pfs, "cff", *ds, 3);
  const formats::CffReader reader(pfs, "cff",
                                  ds->spec().nominal_cff_sample_bytes());

  simmpi::Runtime rt(nranks, machine);
  rt.run([&](simmpi::Comm& c) {
    fs::FsClient client(pfs, machine.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
    DDStoreConfig cfg;
    cfg.width = width;
    cfg.placement = placement;
    cfg.comm_mode = comm_mode;
    DDStore store(c, reader, client, cfg);

    EXPECT_EQ(store.num_samples(), kSamples);
    EXPECT_EQ(store.num_replicas(), nranks / (width == 0 ? nranks : width));

    // Stride chosen per-rank so the sweep exercises different access
    // interleavings while still covering everything across ranks.
    const std::uint64_t stride = 1 + static_cast<std::uint64_t>(c.rank()) % 3;
    for (std::uint64_t id = static_cast<std::uint64_t>(c.rank()) % stride;
         id < kSamples; id += stride) {
      EXPECT_EQ(store.get(id), ds->make(id)) << "sample " << id;
    }
    // Registry totals must account for every byte exactly once per group.
    std::uint64_t total = 0;
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      total += store.registry().lookup(id).length;
    }
    EXPECT_EQ(total, store.registry().total_bytes());
    store.fence();
  });
}

INSTANTIATE_TEST_SUITE_P(
    WidthsPlacementsModes, DDStoreSweep,
    ::testing::Values(
        Config{1, 0, Placement::Block, CommMode::OneSidedRma},
        Config{2, 0, Placement::Block, CommMode::OneSidedRma},
        Config{4, 2, Placement::Block, CommMode::OneSidedRma},
        Config{4, 2, Placement::RoundRobin, CommMode::OneSidedRma},
        Config{6, 3, Placement::Block, CommMode::OneSidedRma},
        Config{6, 2, Placement::RoundRobin, CommMode::OneSidedRma},
        Config{8, 8, Placement::Block, CommMode::OneSidedRma},
        Config{8, 4, Placement::RoundRobin, CommMode::OneSidedRma},
        Config{8, 2, Placement::Block, CommMode::OneSidedRma},
        Config{12, 4, Placement::Block, CommMode::OneSidedRma},
        Config{4, 2, Placement::Block, CommMode::TwoSided},
        Config{8, 4, Placement::RoundRobin, CommMode::TwoSided},
        Config{6, 6, Placement::Block, CommMode::TwoSided}),
    [](const ::testing::TestParamInfo<Config>& info) {
      // No structured bindings here: their bracketed name list confuses
      // macro argument splitting inside INSTANTIATE_TEST_SUITE_P.
      return "n" + std::to_string(std::get<0>(info.param)) + "w" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == Placement::Block ? "Block" : "RR") +
             (std::get<3>(info.param) == CommMode::OneSidedRma ? "Rma"
                                                               : "TwoSided");
    });

}  // namespace
}  // namespace dds::core
