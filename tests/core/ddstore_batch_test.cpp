// get_batch across the three BatchFetchModes: request order is preserved
// (duplicates and all), repeated ids are fetched once, empty batches are
// no-ops, the coalesced planner counters add up, and — with fault injection
// armed — a failed coalesced transfer degrades to per-sample resilient
// fetches that deliver byte-identical samples.
#include <gtest/gtest.h>

#include <mutex>

#include "core/ddstore.hpp"
#include "datagen/dataset.hpp"
#include "faults/injector.hpp"
#include "formats/cff.hpp"

namespace dds::core {
namespace {

using datagen::DatasetKind;
using model::test_machine;

constexpr std::uint64_t kSamples = 64;

class DDStoreBatchTest : public ::testing::Test {
 protected:
  DDStoreBatchTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/4),
        ds_(datagen::make_dataset(DatasetKind::AisdHomoLumo, kSamples, 7)) {
    formats::CffWriter::stage(fs_, "cff/ds", *ds_, 2);
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  formats::CffReader cff_reader() {
    return formats::CffReader(fs_, "cff/ds",
                              ds_->spec().nominal_cff_sample_bytes());
  }

  /// A request with duplicates, out-of-order ids, and every owner touched.
  static std::vector<std::uint64_t> dup_batch() {
    return {60, 3, 33, 3, 17, 60, 0, 63, 3};
  }

  void expect_request_order(const std::vector<graph::GraphSample>& batch,
                            const std::vector<std::uint64_t>& ids) {
    ASSERT_EQ(batch.size(), ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(batch[i], ds_->make(ids[i])) << "request slot " << i;
    }
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
};

TEST_F(DDStoreBatchTest, AllModesPreserveRequestOrderWithDuplicates) {
  for (const auto mode :
       {BatchFetchMode::PerSample, BatchFetchMode::LockPerTarget,
        BatchFetchMode::Coalesced}) {
    simmpi::Runtime rt(4, machine_);
    const auto reader = cff_reader();
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      DDStoreConfig cfg;
      cfg.batch_fetch = mode;
      DDStore store(c, reader, client, cfg);

      EXPECT_TRUE(store.get_batch({}).empty());

      const auto ids = dup_batch();
      const auto batch = store.get_batch(ids);
      expect_request_order(batch, ids);

      const auto& st = store.stats();
      // 9 requests over 6 unique ids: 3 duplicate hits, 9 decodes, and 6
      // fetches' worth of bytes (each unique id moved exactly once).
      EXPECT_EQ(st.batch_dup_hits, 3u);
      EXPECT_EQ(st.latency.count(), ids.size());
      EXPECT_EQ(st.local_gets + st.remote_gets, 6u);
      store.fence();
    });
  }
}

TEST_F(DDStoreBatchTest, CoalescedPlansOneTransferPerTarget) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.batch_fetch = BatchFetchMode::Coalesced;
    DDStore store(c, reader, client, cfg);

    // The whole dataset in one batch: Block placement => 4 targets, each
    // fully contiguous, so exactly 4 vectored transfers of 1 segment each.
    std::vector<std::uint64_t> ids(kSamples);
    for (std::uint64_t i = 0; i < kSamples; ++i) ids[i] = i;
    const auto batch = store.get_batch(ids);
    expect_request_order(batch, ids);

    const auto& st = store.stats();
    EXPECT_EQ(st.coalesced_transfers, 4u);
    EXPECT_EQ(st.coalesced_segments, 4u);
    EXPECT_EQ(st.lock_epochs, 4u);
    EXPECT_EQ(st.rma_transfers, 4u);
    EXPECT_EQ(st.lock_epochs_saved, kSamples - 4u);
    EXPECT_EQ(st.coalesced_fallbacks, 0u);
    EXPECT_EQ(st.coalesced_bytes, st.bytes_fetched);
    store.fence();
  });
}

TEST_F(DDStoreBatchTest, LockPerTargetCountsEpochsAndTransfers) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.batch_fetch = BatchFetchMode::LockPerTarget;
    DDStore store(c, reader, client, cfg);

    std::vector<std::uint64_t> ids(kSamples);
    for (std::uint64_t i = 0; i < kSamples; ++i) ids[i] = i;
    const auto batch = store.get_batch(ids);
    expect_request_order(batch, ids);

    const auto& st = store.stats();
    // One epoch per distinct target, one plain get per unique sample.
    EXPECT_EQ(st.lock_epochs, 4u);
    EXPECT_EQ(st.rma_transfers, kSamples);
    EXPECT_EQ(st.coalesced_transfers, 0u);
    store.fence();
  });
}

TEST_F(DDStoreBatchTest, PerSampleCountsOneEpochPerFetch) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStore store(c, reader, client);  // PerSample default
    const auto ids = dup_batch();
    (void)store.get_batch(ids);
    const auto& st = store.stats();
    EXPECT_EQ(st.lock_epochs, 6u);    // unique ids
    EXPECT_EQ(st.rma_transfers, 6u);
    EXPECT_EQ(st.lock_epochs_saved, 0u);
    store.fence();
  });
}

// Acceptance criterion: with fault injection armed, coalesced mode must
// produce byte-identical samples to per-sample mode under the same seed —
// failed or corrupted vectored transfers degrade to the per-sample
// resilient path and recover the true payloads.
TEST_F(DDStoreBatchTest, CoalescedDegradesToResilientFetchesUnderFaults) {
  faults::FaultConfig fc;
  fc.seed = 99;
  fc.rma_fail_prob = 0.10;
  fc.rma_corrupt_prob = 0.15;
  // Each rank only issues ~1 remote coalesced transfer per full-dataset
  // batch (its other target is itself), so sweep repeatedly to make the
  // degraded path statistically certain to fire.
  constexpr int kSweeps = 20;

  std::vector<std::vector<graph::GraphSample>> runs;
  std::uint64_t fallbacks = 0;
  std::uint64_t checksum_failures = 0;
  std::mutex m;
  for (const auto mode :
       {BatchFetchMode::PerSample, BatchFetchMode::Coalesced}) {
    simmpi::Runtime rt(4, machine_);
    rt.set_fault_injector(std::make_shared<faults::FaultInjector>(fc, 4));
    const auto reader = cff_reader();
    std::vector<graph::GraphSample> mine;
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      DDStoreConfig cfg;
      cfg.batch_fetch = mode;
      cfg.width = 2;  // two replica groups: cross-group failover available
      DDStore store(c, reader, client, cfg);
      std::vector<std::uint64_t> ids(kSamples);
      for (std::uint64_t i = 0; i < kSamples; ++i) ids[i] = i;
      std::vector<graph::GraphSample> batch;
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        batch = store.get_batch(ids);
        expect_request_order(batch, ids);
      }
      store.fence();
      const std::scoped_lock lock(m);
      if (c.rank() == 0) mine = batch;
      if (mode == BatchFetchMode::Coalesced) {
        fallbacks += store.stats().coalesced_fallbacks;
        checksum_failures += store.stats().checksum_failures;
      }
    });
    runs.push_back(std::move(mine));
  }

  // Both modes recovered ground truth — so they are byte-identical to each
  // other — and the coalesced run genuinely exercised the degraded path.
  ASSERT_EQ(runs.size(), 2u);
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i], runs[1][i]) << "sample slot " << i;
  }
  EXPECT_GT(fallbacks, 0u);
  EXPECT_GT(checksum_failures, 0u);
}

}  // namespace
}  // namespace dds::core
