// Unit tests for the resilience stage's per-target health machinery
// (core/fetch/health.hpp): the three-state circuit breaker's half-open
// transition edges, and the HealthTracker's score / quarantine / adaptive
// deadline behaviour.  Both classes are pure bookkeeping, so no runtime or
// virtual clock is needed here.
#include "core/fetch/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dds::core::fetch {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------- breaker

TEST(CircuitBreaker, TripsAfterThresholdConsecutiveFailures) {
  CircuitBreaker b(/*threshold=*/3, /*cooldown=*/4);
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  EXPECT_FALSE(b.on_failure());
  EXPECT_FALSE(b.on_failure());
  EXPECT_FALSE(b.open());
  EXPECT_TRUE(b.on_failure());  // third strike reports the trip
  EXPECT_TRUE(b.open());
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker b(3, 4);
  b.on_failure();
  b.on_failure();
  b.on_success();  // interleaved success forgives the streak
  EXPECT_FALSE(b.on_failure());
  EXPECT_FALSE(b.on_failure());
  EXPECT_FALSE(b.open());
  EXPECT_TRUE(b.on_failure());
}

TEST(CircuitBreaker, CooldownSkipsThenArmsTheHalfOpenProbe) {
  CircuitBreaker b(1, /*cooldown=*/3);
  EXPECT_TRUE(b.on_failure());
  // Every cooldown consultation skips; the one that exhausts it still
  // skips but arms the probe, so the *next* fetch goes through.
  EXPECT_TRUE(b.should_skip());
  EXPECT_TRUE(b.should_skip());
  EXPECT_TRUE(b.should_skip());
  EXPECT_EQ(b.state(), CircuitBreaker::State::HalfOpen);
  EXPECT_FALSE(b.should_skip());  // probe admitted
}

TEST(CircuitBreaker, HalfOpenProbeSuccessCloses) {
  CircuitBreaker b(1, 2);
  b.on_failure();
  while (b.should_skip()) {
  }
  ASSERT_EQ(b.state(), CircuitBreaker::State::HalfOpen);
  b.on_success();
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  // Fully recovered: a single new failure below threshold does not trip.
  CircuitBreaker fresh(2, 2);
  fresh.on_failure();
  EXPECT_FALSE(fresh.open());
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopensImmediately) {
  CircuitBreaker b(/*threshold=*/3, /*cooldown=*/2);
  b.on_failure();
  b.on_failure();
  ASSERT_TRUE(b.on_failure());
  while (b.should_skip()) {
  }
  ASSERT_EQ(b.state(), CircuitBreaker::State::HalfOpen);
  // One failed probe re-opens — it does NOT get `threshold` fresh strikes.
  EXPECT_TRUE(b.on_failure());
  EXPECT_TRUE(b.open());
  // A still-broken target therefore costs exactly one probe per window.
  int probes = 0;
  for (int fetch = 0; fetch < 12; ++fetch) {
    if (!b.should_skip()) {
      ++probes;
      b.on_failure();
    }
  }
  EXPECT_EQ(probes, 4);  // 12 fetches / (2 skips + 1 probe) per window
}

TEST(CircuitBreaker, ResetClosesAndClearsHistory) {
  CircuitBreaker b(1, 64);
  b.on_failure();
  ASSERT_TRUE(b.open());
  b.reset();
  EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);
  EXPECT_FALSE(b.should_skip());
}

// ---------------------------------------------------------------- tracker

HealthParams test_params() {
  HealthParams p;  // library defaults; pinned here so the math below holds
  p.alpha = 0.2;
  p.alpha_down = 0.5;
  p.min_observations = 8;
  p.quarantine_below = 0.3;
  p.deadline_sigma = 4.0;
  p.deadline_floor_s = 50e-6;
  p.deadline_cap_ratio = 6.0;
  p.penalty_step = 1.0;
  p.penalty_decay = 0.9;
  return p;
}

void feed(HealthTracker& t, std::size_t target, double service_s, int n) {
  for (int i = 0; i < n; ++i) t.observe(target, service_s);
}

TEST(HealthTracker, UncalibratedTargetsAreHealthyAndNeverHedged) {
  HealthTracker t(2, test_params());
  EXPECT_DOUBLE_EQ(t.score(0), 1.0);
  EXPECT_FALSE(t.quarantined(0));
  EXPECT_EQ(t.deadline(0), kInf);
  feed(t, 0, 100e-6, 7);  // one short of min_observations
  EXPECT_DOUBLE_EQ(t.score(0), 1.0);
  EXPECT_EQ(t.deadline(0), kInf);
  t.observe(0, 100e-6);  // eighth observation calibrates
  EXPECT_TRUE(std::isfinite(t.deadline(0)));
  EXPECT_EQ(t.observations(0), 8u);
}

TEST(HealthTracker, SteadyServiceScoresOneWithTightDeadline) {
  HealthTracker t(1, test_params());
  feed(t, 0, 100e-6, 20);
  // First observation seeds the EWMA, so a constant series holds exactly.
  EXPECT_DOUBLE_EQ(t.score(0), 1.0);
  EXPECT_DOUBLE_EQ(t.deadline(0), 100e-6);  // ewdev 0, above the floor
}

TEST(HealthTracker, DeadlineNeverDropsBelowTheFloor) {
  HealthTracker t(1, test_params());
  feed(t, 0, 10e-6, 10);  // faster than the floor
  EXPECT_DOUBLE_EQ(t.deadline(0), 50e-6);
}

TEST(HealthTracker, DegradationQuarantinesAndCapsItsOwnDeadline) {
  HealthTracker t(1, test_params());
  feed(t, 0, 100e-6, 12);  // healthy baseline
  ASSERT_DOUBLE_EQ(t.score(0), 1.0);
  feed(t, 0, 1e-3, 8);  // 10x degradation
  EXPECT_LT(t.score(0), 0.3);
  EXPECT_TRUE(t.quarantined(0));
  // The inflated EWMA must not push the hedging deadline out of reach:
  // it is capped at deadline_cap_ratio * the target's best (healthy) EWMA,
  // so probation probes stay bounded.
  EXPECT_LE(t.deadline(0), 6.0 * 100e-6 * (1.0 + 1e-12));
}

TEST(HealthTracker, RecoveryIsFasterThanDegradation) {
  HealthTracker t(1, test_params());
  feed(t, 0, 100e-6, 12);
  feed(t, 0, 1e-3, 8);
  ASSERT_TRUE(t.quarantined(0));
  // Asymmetric smoothing (alpha_down > alpha): a recovered target
  // un-quarantines within a few probation probes.
  int probes = 0;
  while (t.quarantined(0) && probes < 4) {
    t.observe(0, 100e-6);
    ++probes;
  }
  EXPECT_FALSE(t.quarantined(0));
  EXPECT_LE(probes, 3);
}

TEST(HealthTracker, DegradedSinceBirthIsABaselineNotAFailure) {
  HealthTracker t(2, test_params());
  feed(t, 0, 100e-6, 20);  // a fast target
  feed(t, 1, 5e-3, 20);    // a slow-from-the-start target (e.g. remote)
  // Scores are self-relative: steady targets all score 1 regardless of
  // their absolute service time, so far targets are never mis-quarantined.
  EXPECT_DOUBLE_EQ(t.score(0), 1.0);
  EXPECT_DOUBLE_EQ(t.score(1), 1.0);
}

TEST(HealthTracker, BestBaselineRatchetsDownOnImprovement) {
  HealthTracker t(1, test_params());
  feed(t, 0, 1e-3, 12);
  ASSERT_DOUBLE_EQ(t.score(0), 1.0);
  feed(t, 0, 100e-6, 30);  // the target gets faster for good
  // Improvement never reads as degradation; the baseline follows it down.
  EXPECT_DOUBLE_EQ(t.score(0), 1.0);
  EXPECT_LE(t.deadline(0), 6.0 * 1e-3);
}

TEST(HealthTracker, FailurePenaltyDiscountsThenDecays) {
  HealthTracker t(1, test_params());
  feed(t, 0, 100e-6, 12);
  t.penalize(0);
  EXPECT_DOUBLE_EQ(t.score(0), 0.5);  // 1 / (1 + penalty_step)
  t.penalize(0);
  EXPECT_NEAR(t.score(0), 1.0 / 3.0, 1e-12);
  // Penalties bite even before calibration (a failing cold target must not
  // hide behind "unknown = healthy").
  HealthTracker cold(1, test_params());
  cold.penalize(0);
  EXPECT_DOUBLE_EQ(cold.score(0), 0.5);
  // Clean successes decay the penalty back out.
  feed(t, 0, 100e-6, 60);
  EXPECT_GT(t.score(0), 0.95);
}

TEST(HealthTracker, ResetForgetsOneTargetOnly) {
  HealthTracker t(2, test_params());
  feed(t, 0, 100e-6, 12);
  feed(t, 0, 1e-3, 8);
  feed(t, 1, 100e-6, 12);
  t.penalize(1);
  ASSERT_TRUE(t.quarantined(0));
  t.reset(0);
  EXPECT_DOUBLE_EQ(t.score(0), 1.0);
  EXPECT_EQ(t.deadline(0), kInf);  // back to uncalibrated
  EXPECT_EQ(t.observations(0), 0u);
  EXPECT_DOUBLE_EQ(t.score(1), 0.5);  // untouched
}

}  // namespace
}  // namespace dds::core::fetch
