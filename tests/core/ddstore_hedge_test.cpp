// Hedged-fetch path under injected gray failures: hedges fire only past a
// calibrated deadline, cancellation accounting never double-counts payload
// bytes, twin payloads always agree, and FaultInjector::revive restores a
// rank's breaker/health eligibility without any collective reset.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "core/ddstore.hpp"
#include "datagen/dataset.hpp"
#include "formats/cff.hpp"

namespace dds::core {
namespace {

using datagen::DatasetKind;
using model::test_machine;

constexpr std::uint64_t kSamples = 64;
constexpr int kRanks = 4;    // width 2: groups {0,1} and {2,3}
constexpr int kWidth = 2;
constexpr int kStraggler = 1;

class DDStoreHedgeTest : public ::testing::Test {
 protected:
  DDStoreHedgeTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/4),
        ds_(datagen::make_dataset(DatasetKind::AisdHomoLumo, kSamples, 7)) {
    formats::CffWriter::stage(fs_, "cff/ds", *ds_, 2);
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  formats::CffReader cff_reader() {
    return formats::CffReader(fs_, "cff/ds",
                              ds_->spec().nominal_cff_sample_bytes());
  }

  void expect_all_samples_intact(DDStore& store) {
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      EXPECT_EQ(store.get(id), ds_->make(id)) << "sample " << id;
    }
  }

  /// Cross-rank sums of the counters these tests audit, captured on rank 0.
  struct Totals {
    std::uint64_t bytes_fetched = 0;
    std::uint64_t hedged = 0;
    std::uint64_t wins = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t steers = 0;
    std::uint64_t retries = 0;
    std::uint64_t degraded = 0;
  };

  /// Runs `passes` full-dataset passes in a deterministic runtime with
  /// `fc` armed (straggler onset and all), hedging on or off, and returns
  /// the job-wide counter totals.  Virtual time is bit-reproducible, so a
  /// slowdown window measured against one run's timeline lands at the same
  /// point in every other run's pass 0.
  Totals run_straggler(const faults::FaultConfig& fc, bool hedge_on,
                       int passes) {
    fs_.reset_time_state();
    Totals totals;
    std::mutex m;
    simmpi::Runtime rt(kRanks, machine_, /*seed=*/42, /*deterministic=*/true);
    if (fc.any()) {
      rt.set_fault_injector(
          std::make_shared<faults::FaultInjector>(fc, kRanks));
    }
    const auto reader = cff_reader();
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      DDStoreConfig cfg;
      cfg.width = kWidth;
      cfg.hedge.enabled = hedge_on;
      DDStore store(c, reader, client, cfg);
      for (int pass = 0; pass < passes; ++pass) {
        expect_all_samples_intact(store);
      }
      const auto& st = store.stats();
      const auto sum = [&](std::uint64_t v) {
        return c.allreduce(v, simmpi::Op::Sum);
      };
      const Totals t{sum(st.bytes_fetched),
                     sum(st.hedged_fetches),
                     sum(st.hedge_wins),
                     sum(st.hedge_mismatches),
                     sum(st.hedge_cancelled_bytes),
                     sum(st.quarantine_steers),
                     sum(st.retries),
                     sum(st.degraded_reads)};
      if (c.rank() == 0) {
        const std::scoped_lock lock(m);
        totals = t;
      }
      store.fence();
    });
    return totals;
  }

  /// Measures the virtual time at which one fault-free full-dataset pass
  /// (plus preload) has completed on every rank — the straggler onset the
  /// tests below use, so pass 0 always calibrates the hedging deadlines
  /// before anything degrades.
  double measure_calibration_horizon() {
    fs_.reset_time_state();
    double horizon = 0.0;
    std::mutex m;
    simmpi::Runtime rt(kRanks, machine_, 42, /*deterministic=*/true);
    const auto reader = cff_reader();
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      DDStoreConfig cfg;
      cfg.width = kWidth;
      DDStore store(c, reader, client, cfg);
      for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get(id);
      // Untimed exchange: the measurement itself must not advance clocks.
      const auto ends = c.allgather_untimed(c.clock().now());
      const double t = *std::max_element(ends.begin(), ends.end());
      if (c.rank() == 0) {
        const std::scoped_lock lock(m);
        horizon = t;
      }
      store.fence();
    });
    return horizon;
  }

  faults::FaultConfig straggler_after(double onset_s) const {
    faults::FaultConfig fc;
    faults::SlowdownPhase p;
    p.rank = kStraggler;
    p.factor = 10.0;
    p.start_s = onset_s;
    fc.slowdowns.push_back(p);
    return fc;
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
};

TEST_F(DDStoreHedgeTest, FaultFreeRunNeverHedges) {
  const Totals t = run_straggler(faults::FaultConfig{}, /*hedge_on=*/true,
                                 /*passes=*/2);
  EXPECT_EQ(t.hedged, 0u);
  EXPECT_EQ(t.wins, 0u);
  EXPECT_EQ(t.mismatches, 0u);
  EXPECT_EQ(t.cancelled, 0u);
  EXPECT_EQ(t.steers, 0u);
  EXPECT_EQ(t.retries, 0u);
}

TEST_F(DDStoreHedgeTest, StragglerFiresHedgesWithConsistentAccounting) {
  const double onset = measure_calibration_horizon();
  ASSERT_GT(onset, 0.0);
  const auto fc = straggler_after(onset);
  const Totals on = run_straggler(fc, /*hedge_on=*/true, /*passes=*/3);

  // Pass 0 calibrated every deadline before the straggler degraded, so
  // passes 1-2 must have hedged around it.
  EXPECT_GT(on.hedged, 0u);
  EXPECT_GT(on.wins, 0u);
  EXPECT_LE(on.wins, on.hedged);
  // A slowdown delays but never damages: both legs of every hedge deliver
  // the same bytes, and the losing leg's payload is accounted as
  // cancelled, not fetched.
  EXPECT_EQ(on.mismatches, 0u);
  EXPECT_GT(on.cancelled, 0u);
  EXPECT_EQ(on.retries, 0u);
  EXPECT_EQ(on.degraded, 0u);
}

TEST_F(DDStoreHedgeTest, HedgingNeverDoubleCountsPayloadBytes) {
  const double onset = measure_calibration_horizon();
  const auto fc = straggler_after(onset);
  const Totals on = run_straggler(fc, /*hedge_on=*/true, /*passes=*/3);
  const Totals off = run_straggler(fc, /*hedge_on=*/false, /*passes=*/3);

  ASSERT_GT(on.hedged, 0u);
  EXPECT_EQ(off.hedged, 0u);  // counters not even registered when off
  EXPECT_EQ(off.cancelled, 0u);
  // Same accesses, same faults: bytes_fetched records each sample once
  // regardless of how many hedge legs raced — the redundant bytes live
  // only in hedge_cancelled_bytes.
  EXPECT_EQ(on.bytes_fetched, off.bytes_fetched);
}

TEST_F(DDStoreHedgeTest, ReviveRestoresBreakerAndHealthEligibility) {
  fs_.reset_time_state();
  faults::FaultConfig fc;
  fc.dead_rank = kStraggler;  // dead from t=0; twins carry its chunk
  auto injector = std::make_shared<faults::FaultInjector>(fc, kRanks);
  simmpi::Runtime rt(kRanks, machine_, 42, /*deterministic=*/true);
  rt.set_fault_injector(injector);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.width = kWidth;
    cfg.hedge.enabled = true;
    DDStore store(c, reader, client, cfg);

    expect_all_samples_intact(store);  // served via failover to the twin
    const std::uint64_t failovers_before = store.stats().failovers;
    if (c.rank() == 0) {
      // The dead partner's breaker is open, so its health reads zero —
      // exactly the signal the elastic driver aggregates.
      EXPECT_GT(failovers_before, 0u);
      EXPECT_GT(store.stats().breaker_trips, 0u);
      EXPECT_EQ(store.health_score(kStraggler), 0.0);
    }

    c.barrier();
    if (c.rank() == 0) injector->revive(kStraggler);
    c.barrier();

    // Eligibility is restored immediately — no cooldown to wait out, no
    // collective reset: the bumped revive epoch makes the open breaker
    // read as closed before any fetch lazily clears the stale state.
    EXPECT_GT(store.health_score(kStraggler), 0.0);

    expect_all_samples_intact(store);
    if (c.rank() == 0) {
      // The revived rank serves as primary again: no new failovers, and
      // its health recovers once fresh observations flow.
      EXPECT_EQ(store.stats().failovers, failovers_before);
      EXPECT_GT(store.health_score(kStraggler), 0.5);
      EXPECT_EQ(store.stats().hedge_mismatches, 0u);
    }
    store.fence();
  });
}

}  // namespace
}  // namespace dds::core
