// Cache stage tests: SampleCache LRU mechanics, byte-identity of cached
// vs RMA-fetched payloads under injected faults, determinism of the
// hit/miss sequence across replication widths, and the reset_stats
// contract (preload facts and cache capacity/warmth survive).
#include "core/fetch/cache.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <mutex>

#include "core/ddstore.hpp"
#include "datagen/dataset.hpp"
#include "formats/cff.hpp"

namespace dds::core {
namespace {

using datagen::DatasetKind;
using fetch::SampleCache;
using model::test_machine;

constexpr std::uint64_t kSamples = 64;
constexpr std::uint64_t kUnbounded =
    std::numeric_limits<std::uint64_t>::max();

ByteBuffer make_bytes(std::size_t n, std::uint8_t fill) {
  return ByteBuffer(n, static_cast<std::byte>(fill));
}

// ---- SampleCache unit tests ----------------------------------------------

TEST(SampleCacheTest, ZeroCapacityDisablesTheStage) {
  SampleCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(SampleCacheTest, LookupPromotesAndEvictionIsLeastRecentlyUsed) {
  SampleCache cache(3);
  cache.insert(1, make_bytes(1, 0xa1));
  cache.insert(2, make_bytes(1, 0xa2));
  cache.insert(3, make_bytes(1, 0xa3));
  ASSERT_NE(cache.lookup(1), nullptr);  // promote 1 over 2 and 3
  EXPECT_EQ(cache.insert(4, make_bytes(1, 0xa4)), 1u);
  EXPECT_FALSE(cache.contains(2));  // 2 was least recently used
  EXPECT_EQ(cache.ids_mru_to_lru(), (std::vector<std::uint64_t>{4, 1, 3}));
}

TEST(SampleCacheTest, ContainsDoesNotPromote) {
  SampleCache cache(3);
  cache.insert(1, make_bytes(1, 0xb1));
  cache.insert(2, make_bytes(1, 0xb2));
  cache.insert(3, make_bytes(1, 0xb3));
  EXPECT_TRUE(cache.contains(1));  // residency probe must not touch LRU
  cache.insert(4, make_bytes(1, 0xb4));
  EXPECT_FALSE(cache.contains(1));  // 1 stayed least recently used
  EXPECT_TRUE(cache.contains(2));
}

TEST(SampleCacheTest, OversizedPayloadIsRejectedWithoutEvicting) {
  SampleCache cache(4);
  cache.insert(1, make_bytes(2, 0xc1));
  EXPECT_EQ(cache.insert(2, make_bytes(8, 0xc2)), 0u);
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));  // nothing was evicted for a lost cause
  EXPECT_EQ(cache.size_bytes(), 2u);
}

TEST(SampleCacheTest, ReinsertRefreshesBytesAndRecency) {
  SampleCache cache(8);
  cache.insert(1, make_bytes(2, 0xd1));
  cache.insert(2, make_bytes(2, 0xd2));
  cache.insert(1, make_bytes(3, 0xdd));  // refresh: new bytes, back to MRU
  const ByteBuffer* hit = cache.lookup(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, make_bytes(3, 0xdd));
  EXPECT_EQ(cache.size_bytes(), 5u);
  EXPECT_EQ(cache.ids_mru_to_lru(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(SampleCacheTest, InsertReportsHowManyEntriesWereEvicted) {
  SampleCache cache(4);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    EXPECT_EQ(cache.insert(id, make_bytes(1, 0xe0)), 0u);
  }
  EXPECT_EQ(cache.insert(5, make_bytes(3, 0xe5)), 3u);
  EXPECT_EQ(cache.ids_mru_to_lru(), (std::vector<std::uint64_t>{5, 4}));
  EXPECT_EQ(cache.size_bytes(), 4u);
}

// ---- DDStore integration -------------------------------------------------

class FetchCacheTest : public ::testing::Test {
 protected:
  FetchCacheTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/4),
        ds_(datagen::make_dataset(DatasetKind::AisdHomoLumo, kSamples, 7)) {
    formats::CffWriter::stage(fs_, "cff/ds", *ds_, 2);
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  formats::CffReader cff_reader() {
    return formats::CffReader(fs_, "cff/ds",
                              ds_->spec().nominal_cff_sample_bytes());
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
};

TEST_F(FetchCacheTest, CachedPayloadsAreByteIdenticalUnderInjectedFaults) {
  simmpi::Runtime rt(4, machine_);
  faults::FaultConfig fc;
  fc.rma_fail_prob = 0.2;
  fc.rma_corrupt_prob = 0.1;
  rt.set_fault_injector(std::make_shared<faults::FaultInjector>(fc, 4));
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.width = 2;
    cfg.cache_capacity_bytes = kUnbounded;
    DDStore store(c, reader, client, cfg);
    // First sweep fetches through the faulty transport (verified bytes are
    // admitted); the second sweep is served from the cache and must return
    // the exact same payloads.
    std::vector<ByteBuffer> first(kSamples);
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      first[id] = store.get_bytes(id);
    }
    EXPECT_EQ(store.stats().cache_hits, 0u);
    EXPECT_EQ(store.stats().cache_misses, kSamples);
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      EXPECT_EQ(store.get_bytes(id), first[id]) << "sample " << id;
      EXPECT_EQ(graph::GraphSample::deserialize(first[id]), ds_->make(id));
    }
    EXPECT_EQ(store.stats().cache_hits, kSamples);
  });
}

TEST_F(FetchCacheTest, CacheHitsBypassTransportResilienceAndLockEpochs) {
  // The stage-ordering invariant (DESIGN.md): a hit consumes no retry
  // budget, trips no breaker, opens no lock epoch, moves no window bytes.
  simmpi::Runtime rt(4, machine_);
  faults::FaultConfig fc;
  fc.rma_fail_prob = 0.3;
  rt.set_fault_injector(std::make_shared<faults::FaultInjector>(fc, 4));
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.cache_capacity_bytes = kUnbounded;
    DDStore store(c, reader, client, cfg);
    for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get_bytes(id);
    store.reset_stats();
    for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get_bytes(id);
    const auto& st = store.stats();
    EXPECT_EQ(st.cache_hits, kSamples);
    EXPECT_EQ(st.cache_misses, 0u);
    EXPECT_EQ(st.retries, 0u);
    EXPECT_EQ(st.failovers, 0u);
    EXPECT_EQ(st.breaker_trips, 0u);
    EXPECT_EQ(st.rma_transfers, 0u);
    EXPECT_EQ(st.lock_epochs, 0u);
    EXPECT_EQ(st.local_gets, 0u);
    EXPECT_EQ(st.remote_gets, 0u);
    EXPECT_EQ(st.bytes_fetched, 0u);
  });
}

TEST_F(FetchCacheTest, HitMissSequenceIsIdenticalAcrossWidths) {
  // Cache keys are sample ids, not owners: for a fixed request sequence the
  // hit/miss/eviction trace must not depend on the replication width.
  const auto reader = cff_reader();
  // A capacity that forces eviction churn: about a quarter of the dataset.
  std::uint64_t capacity = 0;
  for (std::uint64_t id = 0; id < kSamples / 4; ++id) {
    capacity += reader.read_bytes_raw(id).size();
  }

  struct Trace {
    std::uint64_t hits, misses, evictions;
    bool operator==(const Trace&) const = default;
  };
  const auto run_width = [&](int width) {
    std::vector<Trace> traces(8);
    std::mutex m;
    simmpi::Runtime rt(8, machine_);
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      DDStoreConfig cfg;
      cfg.width = width;
      cfg.cache_capacity_bytes = capacity;
      DDStore store(c, reader, client, cfg);
      // Each id is requested twice in a row (the repeat hits while the
      // entry is fresh) while the stream keeps walking the dataset (the
      // walk churns the bounded capacity).
      for (int i = 0; i < 96; ++i) {
        const std::uint64_t id =
            (17u * static_cast<std::uint64_t>(c.rank()) + 13u * (i / 2)) %
            kSamples;
        (void)store.get_bytes(id);
      }
      const auto& st = store.stats();
      const std::scoped_lock lock(m);
      traces[static_cast<std::size_t>(c.rank())] =
          Trace{st.cache_hits, st.cache_misses, st.cache_evictions};
    });
    return traces;
  };

  const auto w1 = run_width(1);
  const auto w2 = run_width(2);
  const auto w4 = run_width(4);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w2, w4);
  std::uint64_t total_hits = 0, total_evictions = 0;
  for (const auto& t : w1) {
    total_hits += t.hits;
    total_evictions += t.evictions;
  }
  EXPECT_GT(total_hits, 0u);       // the sequence revisits ids
  EXPECT_GT(total_evictions, 0u);  // and the bounded capacity churns
}

TEST_F(FetchCacheTest, ResetStatsPreservesCacheCapacityAndWarmth) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.cache_capacity_bytes = kUnbounded;
    DDStore store(c, reader, client, cfg);
    for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get_bytes(id);
    const double preload_s = store.stats().preload_seconds;
    const std::size_t warm_entries = store.sample_cache().entries();
    EXPECT_EQ(warm_entries, kSamples);

    store.reset_stats();

    // Counters are zeroed...
    EXPECT_EQ(store.stats().cache_hits, 0u);
    EXPECT_EQ(store.stats().cache_misses, 0u);
    EXPECT_EQ(store.stats().local_gets, 0u);
    // ...but construction facts and the cache survive: capacity, contents,
    // and recency are untouched, so the next fetch of a resident id hits.
    EXPECT_DOUBLE_EQ(store.stats().preload_seconds, preload_s);
    EXPECT_EQ(store.sample_cache().capacity_bytes(), kUnbounded);
    EXPECT_EQ(store.sample_cache().entries(), warm_entries);
    (void)store.get_bytes(0);
    EXPECT_EQ(store.stats().cache_hits, 1u);
    EXPECT_EQ(store.stats().rma_transfers, 0u);
  });
}

TEST_F(FetchCacheTest, CacheHitIsCheaperThanLocalOrRemoteFetch) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.cache_capacity_bytes = kUnbounded;
    DDStore store(c, reader, client, cfg);
    const ChunkAssignment a(kSamples, 4, Placement::Block);
    std::uint64_t local_id = 0, remote_id = 0;
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      if (a.owner_of(id) == c.rank()) local_id = id;
      if (a.owner_of(id) == (c.rank() + 1) % 4) remote_id = id;
    }
    const auto timed = [&](std::uint64_t id) {
      const double t0 = c.clock().now();
      (void)store.get_bytes(id);
      return c.clock().now() - t0;
    };
    const double local_miss = timed(local_id);
    const double local_hit = timed(local_id);
    const double remote_miss = timed(remote_id);
    const double remote_hit = timed(remote_id);
    EXPECT_LT(local_hit, local_miss);
    EXPECT_LT(remote_hit, remote_miss);
    EXPECT_GT(local_hit, 0.0);  // hits are cheap, not free
  });
}

TEST_F(FetchCacheTest, PlannedBatchesServeResidentIdsWithoutTransfers) {
  simmpi::Runtime rt(4, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.batch_fetch = BatchFetchMode::Coalesced;
    cfg.cache_capacity_bytes = kUnbounded;
    DDStore store(c, reader, client, cfg);
    const std::vector<std::uint64_t> ids = {3, 19, 42, 7, 42, 60, 3, 25};
    const auto first = store.get_batch(ids);
    store.reset_stats();
    const auto second = store.get_batch(ids);
    ASSERT_EQ(second.size(), ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(second[i], ds_->make(ids[i]));
      EXPECT_EQ(second[i], first[i]);
    }
    // Every distinct id was resident, so the plan produced no targets: no
    // lock epochs, no coalesced transfers, only cache service.
    const auto& st = store.stats();
    EXPECT_EQ(st.cache_hits, 6u);  // distinct ids; duplicates decode only
    EXPECT_EQ(st.cache_misses, 0u);
    EXPECT_EQ(st.coalesced_transfers, 0u);
    EXPECT_EQ(st.lock_epochs, 0u);
    EXPECT_EQ(st.rma_transfers, 0u);
    EXPECT_EQ(st.batch_dup_hits, 2u);
  });
}

}  // namespace
}  // namespace dds::core
