#include "train/profiler.hpp"

#include <gtest/gtest.h>

namespace dds::train {
namespace {

using model::test_machine;

TEST(PhaseProfile, AddAndGet) {
  PhaseProfile p;
  p.add(Phase::Load, 1.5);
  p.add(Phase::Load, 0.5);
  p.add(Phase::Forward, 2.0);
  EXPECT_DOUBLE_EQ(p.get(Phase::Load), 2.0);
  EXPECT_DOUBLE_EQ(p.get(Phase::Forward), 2.0);
  EXPECT_DOUBLE_EQ(p.get(Phase::Backward), 0.0);
}

TEST(PhaseProfile, TotalExcludesRmaSubcategory) {
  PhaseProfile p;
  p.add(Phase::Load, 3.0);
  p.add(Phase::RmaComm, 2.0);  // subset of Load: not double counted
  p.add(Phase::Optimizer, 1.0);
  EXPECT_DOUBLE_EQ(p.total(), 4.0);
}

TEST(PhaseProfile, MergeSums) {
  PhaseProfile a, b;
  a.add(Phase::Batch, 1.0);
  b.add(Phase::Batch, 2.0);
  b.add(Phase::GradComm, 0.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get(Phase::Batch), 3.0);
  EXPECT_DOUBLE_EQ(a.get(Phase::GradComm), 0.5);
}

TEST(PhaseProfile, DiffGivesInterval) {
  PhaseProfile start;
  start.add(Phase::Load, 1.0);
  PhaseProfile now = start;
  now.add(Phase::Load, 2.0);
  now.add(Phase::Forward, 4.0);
  const PhaseProfile interval = now.diff(start);
  EXPECT_DOUBLE_EQ(interval.get(Phase::Load), 2.0);
  EXPECT_DOUBLE_EQ(interval.get(Phase::Forward), 4.0);
}

TEST(PhaseProfile, ResetZeroes) {
  PhaseProfile p;
  p.add(Phase::Load, 1.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.total(), 0.0);
}

TEST(PhaseProfile, NegativeTimeRejected) {
  PhaseProfile p;
  EXPECT_THROW(p.add(Phase::Load, -0.5), InternalError);
}

TEST(PhaseProfile, AllreduceMeanAveragesAcrossRanks) {
  simmpi::Runtime rt(4, test_machine());
  rt.run([](simmpi::Comm& c) {
    PhaseProfile p;
    p.add(Phase::Load, static_cast<double>(c.rank() + 1));  // 1,2,3,4
    const PhaseProfile mean = p.allreduce_mean(c);
    EXPECT_DOUBLE_EQ(mean.get(Phase::Load), 2.5);
    EXPECT_DOUBLE_EQ(mean.get(Phase::Forward), 0.0);
  });
}

TEST(PhaseProfile, PhaseNamesMatchPaperFigures) {
  EXPECT_STREQ(phase_name(Phase::Load), "CPU-Loading");
  EXPECT_STREQ(phase_name(Phase::Batch), "CPU-Batching");
  EXPECT_STREQ(phase_name(Phase::GradComm), "GPU-Comm");
}

}  // namespace
}  // namespace dds::train
