#include <gtest/gtest.h>

#include "datagen/dataset.hpp"
#include "formats/cff.hpp"
#include "formats/pff.hpp"
#include "train/real_trainer.hpp"
#include "train/sim_trainer.hpp"

namespace dds::train {
namespace {

using datagen::DatasetKind;
using model::test_machine;

constexpr std::uint64_t kSamples = 128;

class TrainTest : public ::testing::Test {
 protected:
  TrainTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/2),
        ds_(datagen::make_dataset(DatasetKind::Ising, kSamples, 3)) {
    formats::CffWriter::stage(fs_, "cff/ds", *ds_, 2);
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  formats::CffReader reader() {
    return formats::CffReader(fs_, "cff/ds",
                              ds_->spec().nominal_cff_sample_bytes());
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
};

TEST_F(TrainTest, DataLoaderYieldsAllBatchesThenEnds) {
  simmpi::Runtime rt(2, machine_);
  const auto r = reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    FileBackend backend(r, client, "CFF");
    GlobalShuffleSampler sampler(kSamples, 8, 1);
    DataLoader loader(backend, sampler, c.clock());
    loader.begin_epoch(0, c);
    std::uint64_t batches = 0;
    while (const auto batch = loader.next()) {
      EXPECT_EQ(batch->num_graphs, 8u);
      EXPECT_EQ(batch->num_nodes, 8u * 125u);
      ++batches;
    }
    EXPECT_EQ(batches, kSamples / (8 * 2));
    EXPECT_EQ(loader.latencies().count(), batches * 8);
  });
}

TEST_F(TrainTest, SimulatedTrainerEpochReportSane) {
  simmpi::Runtime rt(4, machine_);
  const auto r = reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    core::DDStore store(c, r, client);
    DDStoreBackend backend(store);
    GlobalShuffleSampler sampler(kSamples, 4, 2);
    SimTrainerConfig cfg;
    cfg.input_dim = 2;
    cfg.output_dim = 1;
    SimulatedTrainer trainer(c, backend, sampler, machine_, cfg);
    const auto report = trainer.run_epoch(0);
    EXPECT_EQ(report.global_samples, kSamples / (4 * 4) * 16);
    EXPECT_GT(report.epoch_seconds, 0.0);
    EXPECT_GT(report.throughput, 0.0);
    EXPECT_GT(report.mean_profile.get(Phase::Load), 0.0);
    EXPECT_GT(report.mean_profile.get(Phase::Forward), 0.0);
    EXPECT_GT(report.mean_profile.get(Phase::GradComm), 0.0);
    // All ranks agree on the report.
    const auto t = c.allgather(report.epoch_seconds);
    for (const double v : t) EXPECT_DOUBLE_EQ(v, report.epoch_seconds);
  });
}

TEST_F(TrainTest, DDStoreFasterThanFileBackend) {
  // The headline claim at test scale: an epoch through DDStore beats an
  // epoch reading PFF files, in simulated time.
  formats::PffWriter::stage(fs_, "pff/ds", *ds_);
  const auto cff = reader();
  const formats::PffReader pff(fs_, "pff/ds", kSamples,
                               ds_->spec().nominal_pff_sample_bytes());
  double dds_time = 0, pff_time = 0;
  {
    simmpi::Runtime rt(4, machine_);
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      core::DDStore store(c, cff, client);
      DDStoreBackend backend(store);
      GlobalShuffleSampler sampler(kSamples, 4, 2);
      SimulatedTrainer trainer(c, backend, sampler, machine_, {});
      c.runtime().reset_time();  // exclude preload
      const auto rep = trainer.run_epoch(0);
      if (c.rank() == 0) dds_time = rep.epoch_seconds;
    });
  }
  {
    simmpi::Runtime rt(4, machine_);
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      FileBackend backend(pff, client, "PFF");
      GlobalShuffleSampler sampler(kSamples, 4, 2);
      SimulatedTrainer trainer(c, backend, sampler, machine_, {});
      const auto rep = trainer.run_epoch(0);
      if (c.rank() == 0) pff_time = rep.epoch_seconds;
    });
  }
  EXPECT_LT(dds_time, pff_time);
}

TEST_F(TrainTest, GatherLatenciesCollectsAllRanks) {
  simmpi::Runtime rt(2, machine_);
  const auto r = reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    FileBackend backend(r, client, "CFF");
    GlobalShuffleSampler sampler(kSamples, 8, 4);
    SimulatedTrainer trainer(c, backend, sampler, machine_, {});
    trainer.run_epoch(0);
    const auto all = trainer.gather_latencies();
    if (c.rank() == 0) {
      EXPECT_EQ(all.count(), kSamples / (8 * 2) * 8 * 2);
      EXPECT_GT(all.median(), 0.0);
    } else {
      EXPECT_EQ(all.count(), 0u);
    }
  });
}

TEST_F(TrainTest, RealTrainerLossDecreases) {
  simmpi::Runtime rt(2, machine_);
  const auto r = reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    FileBackend backend(r, client, "CFF");
    RealTrainerConfig cfg;
    cfg.gnn.input_dim = 2;
    cfg.gnn.hidden = 8;
    cfg.gnn.pna_layers = 1;
    cfg.gnn.fc_layers = 1;
    cfg.gnn.output_dim = 1;
    cfg.local_batch = 8;
    cfg.optimizer.lr = 3e-3;
    cfg.optimizer.weight_decay = 0.0;
    RealTrainer trainer(c, backend, cfg);
    EXPECT_EQ(trainer.train_size(), 102u);  // 80% of 128
    EXPECT_EQ(trainer.val_size() + trainer.test_size(), 26u);

    const auto first = trainer.run_epoch(0);
    TrainEpochResult last{};
    for (std::uint64_t e = 1; e < 8; ++e) last = trainer.run_epoch(e);
    EXPECT_LT(last.train_loss, first.train_loss);
    EXPECT_GT(first.val_loss, 0.0);
    EXPECT_GT(first.test_loss, 0.0);
    EXPECT_DOUBLE_EQ(last.lr, 3e-3);  // no plateau hit this early
  });
}

TEST_F(TrainTest, RealTrainerReplicasStayIdentical) {
  simmpi::Runtime rt(2, machine_);
  const auto r = reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    FileBackend backend(r, client, "CFF");
    RealTrainerConfig cfg;
    cfg.gnn.input_dim = 2;
    cfg.gnn.hidden = 4;
    cfg.gnn.pna_layers = 1;
    cfg.gnn.fc_layers = 0;
    cfg.local_batch = 4;
    RealTrainer trainer(c, backend, cfg);
    trainer.run_epoch(0);
    // After DDP steps, parameters must be identical across ranks.
    const auto params = trainer.model().parameters();
    float checksum = 0;
    for (const auto& p : params) {
      for (const float v : *p.value) checksum += v;
    }
    const auto sums = c.allgather(checksum);
    EXPECT_FLOAT_EQ(sums[0], sums[1]);
  });
}

TEST_F(TrainTest, SingleRankTrainingWorks) {
  simmpi::Runtime rt(1, machine_);
  const auto r = reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    FileBackend backend(r, client, "CFF");
    RealTrainerConfig cfg;
    cfg.gnn.input_dim = 2;
    cfg.gnn.hidden = 4;
    cfg.gnn.pna_layers = 1;
    cfg.gnn.fc_layers = 0;
    cfg.local_batch = 16;
    RealTrainer trainer(c, backend, cfg);
    const auto res = trainer.run_epoch(0);
    EXPECT_GT(res.train_loss, 0.0);
  });
}

}  // namespace
}  // namespace dds::train
