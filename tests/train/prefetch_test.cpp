// PrefetchingLoader: double-buffered overlap of batch fetch and compute.
// Checks the overlap cost model (max + rho * min), the depth knob, the
// hidden-seconds accounting, and the SimulatedTrainer integration
// (Prefetching mode beats the serial baseline and reports planner traffic).
#include <gtest/gtest.h>

#include <mutex>

#include "datagen/dataset.hpp"
#include "formats/cff.hpp"
#include "train/sim_trainer.hpp"

namespace dds::train {
namespace {

using datagen::DatasetKind;
using model::test_machine;

constexpr std::uint64_t kSamples = 128;

class PrefetchTest : public ::testing::Test {
 protected:
  PrefetchTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/2),
        ds_(datagen::make_dataset(DatasetKind::Ising, kSamples, 3)) {
    formats::CffWriter::stage(fs_, "cff/ds", *ds_, 2);
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  formats::CffReader reader() {
    return formats::CffReader(fs_, "cff/ds",
                              ds_->spec().nominal_cff_sample_bytes());
  }

  /// Runs one epoch of next()/compute_window(C) through a DDStore backend
  /// and returns rank 0's (epoch seconds, hidden seconds).
  std::pair<double, double> run_loader_epoch(int depth, double rho,
                                             double compute_s) {
    double elapsed = 0, hidden = 0;
    std::mutex m;
    simmpi::Runtime rt(2, machine_);
    const auto r = reader();
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      core::DDStoreConfig cfg;
      cfg.batch_fetch = core::BatchFetchMode::Coalesced;
      core::DDStore store(c, r, client, cfg);
      DDStoreBackend backend(store);
      GlobalShuffleSampler sampler(kSamples, 8, 1);
      PrefetchingLoader loader(backend, sampler, c.clock(),
                               PrefetchConfig{depth, rho});
      c.barrier();
      c.clock().reset();
      const double t0 = c.clock().now();
      loader.begin_epoch(0, c);
      std::uint64_t batches = 0;
      while (const auto batch = loader.next()) {
        EXPECT_EQ(batch->num_graphs, 8u);
        loader.compute_window(compute_s);
        ++batches;
      }
      EXPECT_EQ(batches, loader.steps_per_epoch());
      EXPECT_EQ(loader.latencies().count(), batches * 8);
      const double t = c.allreduce(c.clock().now() - t0, simmpi::Op::Max);
      const std::scoped_lock lock(m);
      if (c.rank() == 0) {
        elapsed = t;
        hidden = loader.overlap_hidden_seconds();
      }
    });
    return {elapsed, hidden};
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
};

TEST_F(PrefetchTest, DepthOneHidesFetchUnderCompute) {
  // A compute window comfortably longer than one batch fetch: with depth 1
  // every fetch after the first should hide, so the epoch approaches
  // steps * C, while depth 0 pays steps * (F + C).
  const double compute_s = 5e-3;
  const auto [serial, hidden0] = run_loader_epoch(0, 0.0, compute_s);
  const auto [overlapped, hidden1] = run_loader_epoch(1, 0.0, compute_s);
  EXPECT_LT(overlapped, serial);
  EXPECT_EQ(hidden0, 0.0);
  EXPECT_GT(hidden1, 0.0);
  // The saving visible in the epoch time matches the hidden accounting to
  // within the cross-rank allreduce of the max.
  EXPECT_GT(serial - overlapped, 0.5 * hidden1);
}

TEST_F(PrefetchTest, FullNonOverlapFractionDisablesHiding) {
  // rho = 1: max(F, C) + min(F, C) = F + C — nothing hides, the "overlap"
  // epoch costs the same as the serial one.
  const double compute_s = 2e-3;
  const auto [serial, h0] = run_loader_epoch(0, 1.0, compute_s);
  const auto [overlapped, h1] = run_loader_epoch(1, 1.0, compute_s);
  EXPECT_EQ(h0, 0.0);
  EXPECT_EQ(h1, 0.0);
  // Queueing at shared NICs is sensitive to issue times, which differ
  // slightly between the two schedules; allow that jitter but nothing more.
  EXPECT_NEAR(overlapped, serial, serial * 1e-3);
}

TEST_F(PrefetchTest, DeeperBufferStillBeatsSerial) {
  // Depth 2 refills greedily: the fetch that crosses the end of a compute
  // window overshoots it, and the overshoot is paid serially, so depth 2
  // may hide slightly less than depth 1. It must still hide real time and
  // still beat the serial baseline.
  const double compute_s = 3e-3;
  const auto [d0, h0] = run_loader_epoch(0, 0.05, compute_s);
  const auto [d1, h1] = run_loader_epoch(1, 0.05, compute_s);
  const auto [d2, h2] = run_loader_epoch(2, 0.05, compute_s);
  EXPECT_EQ(h0, 0.0);
  EXPECT_LT(d1, d0);
  EXPECT_GT(h1, 0.0);
  EXPECT_LT(d2, d0);
  EXPECT_GT(h2, 0.0);
}

TEST_F(PrefetchTest, SimulatedTrainerPrefetchingModeReportsOverlap) {
  simmpi::Runtime rt(4, machine_);
  const auto r = reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    core::DDStoreConfig scfg;
    scfg.batch_fetch = core::BatchFetchMode::Coalesced;
    core::DDStore store(c, r, client, scfg);
    DDStoreBackend backend(store);
    GlobalShuffleSampler sampler(kSamples, 4, 2);
    SimTrainerConfig cfg;
    cfg.input_dim = 2;
    cfg.output_dim = 1;
    cfg.loader_mode = LoaderMode::Prefetching;
    cfg.prefetch_depth = 1;
    SimulatedTrainer trainer(c, backend, sampler, machine_, cfg);
    const auto report = trainer.run_epoch(0);
    EXPECT_EQ(report.global_samples, kSamples / (4 * 4) * 16);
    EXPECT_GT(report.epoch_seconds, 0.0);
    EXPECT_GT(report.throughput, 0.0);
    EXPECT_GT(report.overlap_hidden_s, 0.0);
    // The coalesced planner ran: traffic counters are populated and every
    // batch cost at most one lock epoch per distinct target.
    EXPECT_GT(report.traffic.coalesced_transfers, 0u);
    EXPECT_GT(report.traffic.lock_epochs_saved, 0u);
    EXPECT_EQ(report.traffic.rma_transfers, report.traffic.coalesced_transfers);
    EXPECT_EQ(report.traffic.coalesced_fallbacks, 0u);
    // Sample latencies were recorded through the prefetching loader.
    EXPECT_EQ(trainer.sample_latencies().count(),
              sampler.steps_per_epoch() * 4);
    // All ranks agree on the report.
    const auto t = c.allgather(report.epoch_seconds);
    for (const double v : t) EXPECT_DOUBLE_EQ(v, report.epoch_seconds);
  });
}

TEST_F(PrefetchTest, PrefetchingBeatsSerialBaselineEndToEnd) {
  // The tentpole claim at test scale, through the full trainer: coalesced
  // fetches + depth-1 prefetch strictly beat the per-sample serial path.
  double serial = 0, prefetched = 0;
  std::mutex m;
  const auto r = reader();
  for (const bool prefetch : {false, true}) {
    simmpi::Runtime rt(4, machine_);
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      core::DDStoreConfig scfg;
      scfg.batch_fetch = prefetch ? core::BatchFetchMode::Coalesced
                                  : core::BatchFetchMode::PerSample;
      core::DDStore store(c, r, client, scfg);
      DDStoreBackend backend(store);
      GlobalShuffleSampler sampler(kSamples, 4, 2);
      SimTrainerConfig cfg;
      cfg.input_dim = 2;
      cfg.output_dim = 1;
      cfg.loader_mode = LoaderMode::Prefetching;
      cfg.prefetch_depth = prefetch ? 1 : 0;
      SimulatedTrainer trainer(c, backend, sampler, machine_, cfg);
      const auto report = trainer.run_epoch(0);
      const std::scoped_lock lock(m);
      if (c.rank() == 0) (prefetch ? prefetched : serial) = report.epoch_seconds;
    });
  }
  EXPECT_LT(prefetched, serial);
}

}  // namespace
}  // namespace dds::train
