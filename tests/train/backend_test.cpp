// DataBackend default-path tests: the base-class load_batch must pay the
// storage path once per *distinct* id and copy decoded samples for
// repeated occurrences, matching the dedupe the DDStore fetch planner
// performs on its batched path.
#include "train/backend.hpp"

#include <gtest/gtest.h>

#include <map>

#include "datagen/dataset.hpp"

namespace dds::train {
namespace {

/// Minimal backend over a synthetic dataset that counts load() calls per
/// id — exercising DataBackend's default load_batch.
class CountingBackend final : public DataBackend {
 public:
  explicit CountingBackend(const datagen::SyntheticDataset& ds) : ds_(&ds) {}

  graph::GraphSample load(std::uint64_t id) override {
    ++loads_[id];
    return ds_->make(id);
  }
  std::uint64_t num_samples() const override { return ds_->size(); }
  std::uint64_t nominal_sample_bytes() const override { return 1; }
  std::string name() const override { return "counting"; }

  const std::map<std::uint64_t, int>& loads() const { return loads_; }

 private:
  const datagen::SyntheticDataset* ds_;
  std::map<std::uint64_t, int> loads_;
};

TEST(DataBackendDefaults, LoadBatchDedupesRepeatedIdsWithinABatch) {
  const auto ds =
      datagen::make_dataset(datagen::DatasetKind::AisdHomoLumo, 16, 7);
  CountingBackend backend(*ds);
  const std::vector<std::uint64_t> ids = {3, 9, 3, 3, 12, 9, 0};
  const auto batch =
      backend.load_batch(std::span<const std::uint64_t>(ids));
  ASSERT_EQ(batch.size(), ids.size());
  // Request order and duplicate occurrences are preserved...
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(batch[i], ds->make(ids[i])) << "position " << i;
  }
  // ...but each distinct id hit the storage path exactly once.
  EXPECT_EQ(backend.loads().size(), 4u);
  for (const auto& [id, count] : backend.loads()) {
    EXPECT_EQ(count, 1) << "id " << id;
  }
}

TEST(DataBackendDefaults, LoadBatchWithoutDuplicatesIsUnchanged) {
  const auto ds =
      datagen::make_dataset(datagen::DatasetKind::AisdHomoLumo, 8, 7);
  CountingBackend backend(*ds);
  const std::vector<std::uint64_t> ids = {5, 1, 7, 2};
  const auto batch =
      backend.load_batch(std::span<const std::uint64_t>(ids));
  ASSERT_EQ(batch.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(batch[i], ds->make(ids[i]));
  }
  EXPECT_EQ(backend.loads().size(), 4u);
}

}  // namespace
}  // namespace dds::train
