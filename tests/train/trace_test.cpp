#include "train/trace.hpp"

#include <gtest/gtest.h>

namespace dds::train {
namespace {

TEST(Tracer, RecordAccumulatesCallsAndSeconds) {
  Tracer t;
  t.record("load", 0.5);
  t.record("load", 0.25);
  t.record("fwd", 1.0);
  EXPECT_EQ(t.entries().at("load").calls, 2u);
  EXPECT_DOUBLE_EQ(t.entries().at("load").seconds, 0.75);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 1.75);
}

TEST(Tracer, RecordNBulkAccounting) {
  Tracer t;
  t.record_n("MPI_Get", 1000, 0.4);
  EXPECT_EQ(t.entries().at("MPI_Get").calls, 1000u);
  EXPECT_DOUBLE_EQ(t.entries().at("MPI_Get").seconds, 0.4);
}

TEST(Tracer, RankedSortsByTimeDescending) {
  Tracer t;
  t.record("a", 0.1);
  t.record("b", 0.9);
  t.record("c", 0.5);
  const auto r = t.ranked();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].first, "b");
  EXPECT_EQ(r[1].first, "c");
  EXPECT_EQ(r[2].first, "a");
}

TEST(Tracer, RegionMeasuresVirtualTime) {
  Tracer t;
  model::VirtualClock clock;
  {
    Tracer::Region region(&t, "io", clock);
    clock.advance(0.125);
  }
  EXPECT_DOUBLE_EQ(t.entries().at("io").seconds, 0.125);
  EXPECT_EQ(t.entries().at("io").calls, 1u);
}

TEST(Tracer, NullTracerRegionIsNoop) {
  model::VirtualClock clock;
  Tracer::Region region(nullptr, "x", clock);
  clock.advance(1.0);
  // Destruction must not crash.
}

TEST(Tracer, MergeCombinesRanks) {
  Tracer a, b;
  a.record("load", 1.0);
  b.record("load", 2.0);
  b.record("fwd", 0.5);
  a.merge(b);
  EXPECT_EQ(a.entries().at("load").calls, 2u);
  EXPECT_DOUBLE_EQ(a.entries().at("load").seconds, 3.0);
  EXPECT_DOUBLE_EQ(a.entries().at("fwd").seconds, 0.5);
}

TEST(Tracer, ResetClears) {
  Tracer t;
  t.record("x", 1.0);
  t.reset();
  EXPECT_TRUE(t.entries().empty());
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
}

}  // namespace
}  // namespace dds::train
