#include "train/sampler.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dds::train {
namespace {

using model::test_machine;

TEST(GlobalShuffleSampler, CoversDatasetWithoutOverlap) {
  simmpi::Runtime rt(4, test_machine());
  constexpr std::uint64_t kN = 64, kB = 4;
  std::vector<std::set<std::uint64_t>> seen(4);
  rt.run([&](simmpi::Comm& c) {
    GlobalShuffleSampler s(kN, kB, /*seed=*/5);
    s.begin_epoch(0, c);
    EXPECT_EQ(s.steps_per_epoch(), kN / (kB * 4));
    for (std::uint64_t step = 0; step < s.steps_per_epoch(); ++step) {
      for (const auto id : s.batch_ids(step)) {
        seen[c.rank()].insert(id);
      }
    }
  });
  std::set<std::uint64_t> all;
  for (const auto& s : seen) {
    for (const auto id : s) {
      EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(all.size(), kN);  // full coverage: every sample exactly once
}

TEST(GlobalShuffleSampler, PermutationChangesAcrossEpochs) {
  simmpi::Runtime rt(2, test_machine());
  rt.run([](simmpi::Comm& c) {
    GlobalShuffleSampler s(32, 4, 7);
    s.begin_epoch(0, c);
    const auto e0 = s.batch_ids(0);
    s.begin_epoch(1, c);
    const auto e1 = s.batch_ids(0);
    EXPECT_NE(e0, e1);
    // Re-running epoch 0 regenerates the identical order (seeded).
    s.begin_epoch(0, c);
    EXPECT_EQ(s.batch_ids(0), e0);
  });
}

TEST(GlobalShuffleSampler, RanksSeeDisjointSlicesOfSameStep) {
  simmpi::Runtime rt(4, test_machine());
  std::vector<std::vector<std::uint64_t>> step0(4);
  rt.run([&](simmpi::Comm& c) {
    GlobalShuffleSampler s(64, 4, 9);
    s.begin_epoch(3, c);
    step0[c.rank()] = s.batch_ids(0);
  });
  std::set<std::uint64_t> ids;
  for (const auto& v : step0) {
    for (const auto id : v) EXPECT_TRUE(ids.insert(id).second);
  }
  EXPECT_EQ(ids.size(), 16u);
}

TEST(GlobalShuffleSampler, FirstIdOffsetsRange) {
  simmpi::Runtime rt(2, test_machine());
  rt.run([](simmpi::Comm& c) {
    GlobalShuffleSampler s(16, 2, 3, /*first_id=*/100);
    s.begin_epoch(0, c);
    for (std::uint64_t step = 0; step < s.steps_per_epoch(); ++step) {
      for (const auto id : s.batch_ids(step)) {
        EXPECT_GE(id, 100u);
        EXPECT_LT(id, 116u);
      }
    }
  });
}

TEST(GlobalShuffleSampler, DropsPartialTail) {
  simmpi::Runtime rt(3, test_machine());
  rt.run([](simmpi::Comm& c) {
    GlobalShuffleSampler s(100, 8, 1);
    s.begin_epoch(0, c);
    EXPECT_EQ(s.steps_per_epoch(), 100u / (8 * 3));  // = 4
  });
}

TEST(LocalShuffleSampler, StaysInsideOwnShard) {
  simmpi::Runtime rt(4, test_machine());
  rt.run([](simmpi::Comm& c) {
    LocalShuffleSampler s(64, 4, 11);
    s.begin_epoch(0, c);
    const auto [lo, hi] = s.shard();
    EXPECT_EQ(hi - lo, 16u);
    for (std::uint64_t step = 0; step < s.steps_per_epoch(); ++step) {
      for (const auto id : s.batch_ids(step)) {
        EXPECT_GE(id, lo);
        EXPECT_LT(id, hi);
      }
    }
    // The locality bias the paper warns about (§2.2): across epochs the
    // rank still only ever sees its shard.
    s.begin_epoch(5, c);
    for (const auto id : s.batch_ids(0)) {
      EXPECT_GE(id, lo);
      EXPECT_LT(id, hi);
    }
  });
}

TEST(LocalShuffleSampler, ShufflesWithinShard) {
  simmpi::Runtime rt(2, test_machine());
  rt.run([](simmpi::Comm& c) {
    LocalShuffleSampler s(64, 16, 13);
    s.begin_epoch(0, c);
    const auto a = s.batch_ids(0);
    s.begin_epoch(1, c);
    const auto b = s.batch_ids(0);
    EXPECT_NE(a, b);
  });
}

TEST(Samplers, InvalidConfigThrows) {
  EXPECT_THROW(GlobalShuffleSampler(0, 1, 1), InternalError);
  EXPECT_THROW(GlobalShuffleSampler(10, 0, 1), InternalError);
  GlobalShuffleSampler s(10, 2, 1);
  EXPECT_THROW(s.batch_ids(0), InternalError);  // begin_epoch not called
}

}  // namespace
}  // namespace dds::train
