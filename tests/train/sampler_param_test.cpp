// Property sweep: sampler coverage/disjointness invariants across rank
// counts, batch sizes, and epochs.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "train/sampler.hpp"

namespace dds::train {
namespace {

using model::test_machine;
using Config = std::tuple<int /*nranks*/, std::uint64_t /*batch*/,
                          std::uint64_t /*num_samples*/>;

class SamplerSweep : public ::testing::TestWithParam<Config> {};

TEST_P(SamplerSweep, GlobalShuffleExactlyOncePerEpoch) {
  const auto [nranks, batch, num_samples] = GetParam();
  simmpi::Runtime rt(nranks, test_machine());
  std::vector<std::vector<std::uint64_t>> seen(
      static_cast<std::size_t>(nranks));
  rt.run([&, batch = batch, num_samples = num_samples](simmpi::Comm& c) {
    GlobalShuffleSampler s(num_samples, batch, 3);
    for (std::uint64_t epoch = 0; epoch < 2; ++epoch) {
      s.begin_epoch(epoch, c);
      for (std::uint64_t step = 0; step < s.steps_per_epoch(); ++step) {
        const auto ids = s.batch_ids(step);
        EXPECT_EQ(ids.size(), batch);
        if (epoch == 0) {
          auto& mine = seen[static_cast<std::size_t>(c.rank())];
          mine.insert(mine.end(), ids.begin(), ids.end());
        }
      }
    }
  });
  // Across ranks: no duplicates; count = steps * batch * nranks; all in range.
  std::set<std::uint64_t> all;
  for (const auto& v : seen) {
    for (const auto id : v) {
      EXPECT_TRUE(all.insert(id).second) << "duplicate " << id;
      EXPECT_LT(id, num_samples);
    }
  }
  const std::uint64_t expect =
      num_samples / (batch * static_cast<std::uint64_t>(nranks)) * batch *
      static_cast<std::uint64_t>(nranks);
  EXPECT_EQ(all.size(), expect);
}

TEST_P(SamplerSweep, LocalShuffleShardsTileAndStayDisjoint) {
  const auto [nranks, batch, num_samples] = GetParam();
  simmpi::Runtime rt(nranks, test_machine());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> shards(
      static_cast<std::size_t>(nranks));
  rt.run([&, batch = batch, num_samples = num_samples](simmpi::Comm& c) {
    LocalShuffleSampler s(num_samples, batch, 9);
    s.begin_epoch(0, c);
    shards[static_cast<std::size_t>(c.rank())] = s.shard();
    for (std::uint64_t step = 0; step < s.steps_per_epoch(); ++step) {
      for (const auto id : s.batch_ids(step)) {
        EXPECT_GE(id, s.shard().first);
        EXPECT_LT(id, s.shard().second);
      }
    }
  });
  std::uint64_t expect_first = 0;
  for (const auto& [lo, hi] : shards) {
    EXPECT_EQ(lo, expect_first);
    expect_first = hi;
  }
  EXPECT_EQ(expect_first, num_samples);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SamplerSweep,
    ::testing::Values(Config{1, 4, 64}, Config{2, 4, 64}, Config{3, 4, 100},
                      Config{4, 8, 256}, Config{5, 3, 97}, Config{8, 16, 512},
                      Config{7, 1, 49}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "b" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace dds::train
