// Cross-module integration tests: the full pipeline from dataset synthesis
// through staging, DDStore, sampling, and training.
#include <gtest/gtest.h>

#include <mutex>

#include "datagen/dataset.hpp"
#include "formats/cff.hpp"
#include "formats/pff.hpp"
#include "train/real_trainer.hpp"
#include "train/sim_trainer.hpp"

namespace dds {
namespace {

using datagen::DatasetKind;
using model::test_machine;

struct PipelineResult {
  double epoch_seconds = 0;
  double latency_p50 = 0;
  std::vector<double> latencies;
};

PipelineResult run_pipeline(std::uint64_t seed) {
  const auto machine = test_machine();
  constexpr int kRanks = 4;
  constexpr std::uint64_t kSamples = 96;

  fs::ParallelFileSystem pfs(machine.fs, machine.nodes_for_ranks(kRanks));
  const auto ds = datagen::make_dataset(DatasetKind::AisdExDiscrete,
                                        kSamples, 11);
  formats::CffWriter::stage(pfs, "cff", *ds, 2);
  const formats::CffReader reader(pfs, "cff",
                                  ds->spec().nominal_cff_sample_bytes());

  PipelineResult result;
  std::mutex m;
  simmpi::Runtime rt(kRanks, machine, seed);
  rt.run([&](simmpi::Comm& c) {
    fs::FsClient client(pfs, machine.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
    core::DDStore store(c, reader, client);
    c.barrier();
    c.clock().reset();
    c.barrier();
    train::DDStoreBackend backend(store);
    train::GlobalShuffleSampler sampler(kSamples, 8, seed);
    train::SimTrainerConfig cfg;
    cfg.input_dim = 6;
    cfg.output_dim = 100;
    train::SimulatedTrainer trainer(c, backend, sampler, machine, cfg);
    const auto report = trainer.run_epoch(0);
    auto lat = trainer.gather_latencies();
    if (c.rank() == 0) {
      const std::scoped_lock lock(m);
      result.epoch_seconds = report.epoch_seconds;
      result.latency_p50 = lat.percentile(50);
      result.latencies = lat.raw();
    }
    c.barrier();
  });
  return result;
}

TEST(Pipeline, ReproducibleAcrossRuns) {
  // Data, sampling, and costs are seeded, but within-bucket queueing order
  // in BusyResource follows thread scheduling (a documented bucket-level
  // approximation), so timings reproduce to ~1e-3 relative, not bitwise.
  const auto a = run_pipeline(77);
  const auto b = run_pipeline(77);
  EXPECT_NEAR(a.epoch_seconds, b.epoch_seconds, 1e-3 * a.epoch_seconds);
  EXPECT_NEAR(a.latency_p50, b.latency_p50, 1e-3 * a.latency_p50 + 1e-9);
  ASSERT_EQ(a.latencies.size(), b.latencies.size());
  auto la = a.latencies, lb = b.latencies;
  std::sort(la.begin(), la.end());
  std::sort(lb.begin(), lb.end());
  for (std::size_t i = 0; i < la.size(); i += la.size() / 16 + 1) {
    EXPECT_NEAR(la[i], lb[i], 0.05 * la[i] + 1e-9) << "quantile " << i;
  }
}

TEST(Pipeline, DifferentSeedsDifferentTimelines) {
  const auto a = run_pipeline(77);
  const auto b = run_pipeline(78);
  EXPECT_NE(a.epoch_seconds, b.epoch_seconds);
}

TEST(Pipeline, AllBackendsDeliverIdenticalSamples) {
  // Whatever the storage/caching path, the bytes reaching the model must
  // be identical for the same sample ids.
  const auto machine = test_machine();
  constexpr int kRanks = 2;
  constexpr std::uint64_t kSamples = 40;
  fs::ParallelFileSystem pfs(machine.fs, 1);
  const auto ds = datagen::make_dataset(DatasetKind::Ising, kSamples, 5);
  formats::CffWriter::stage(pfs, "cff", *ds, 2);
  formats::PffWriter::stage(pfs, "pff", *ds);
  const formats::CffReader cff(pfs, "cff", 1000);
  const formats::PffReader pff(pfs, "pff", kSamples, 1000);
  fs::NvmeParams nvme_params;
  fs::NvmeTier tier(nvme_params, 1);

  simmpi::Runtime rt(kRanks, machine);
  rt.run([&](simmpi::Comm& c) {
    fs::FsClient client(pfs, 0, c.clock(), c.rng());
    core::DDStore store(c, cff, client);
    train::DDStoreBackend dds_backend(store);
    train::FileBackend cff_backend(cff, client, "CFF");
    train::FileBackend pff_backend(pff, client, "PFF");
    train::NvmeStagedBackend nvme_backend(cff, client, tier, 0);
    for (std::uint64_t id = c.rank(); id < kSamples; id += 2) {
      const auto expect = ds->make(id);
      EXPECT_EQ(dds_backend.load(id), expect);
      EXPECT_EQ(cff_backend.load(id), expect);
      EXPECT_EQ(pff_backend.load(id), expect);
      EXPECT_EQ(nvme_backend.load(id), expect);
    }
  });
}

TEST(Pipeline, RealTrainingThroughDDStoreConvergesAndStaysInSync) {
  const auto machine = test_machine();
  constexpr int kRanks = 3;
  constexpr std::uint64_t kSamples = 96;
  fs::ParallelFileSystem pfs(machine.fs, 1);
  const auto ds = datagen::make_dataset(DatasetKind::Ising, kSamples, 9);
  formats::CffWriter::stage(pfs, "cff", *ds, 2);
  const formats::CffReader reader(pfs, "cff", 1000);

  simmpi::Runtime rt(kRanks, machine);
  rt.run([&](simmpi::Comm& c) {
    fs::FsClient client(pfs, 0, c.clock(), c.rng());
    core::DDStore store(c, reader, client);
    train::DDStoreBackend backend(store);
    train::RealTrainerConfig cfg;
    cfg.gnn.input_dim = 2;
    cfg.gnn.hidden = 8;
    cfg.gnn.pna_layers = 1;
    cfg.gnn.fc_layers = 1;
    cfg.local_batch = 8;
    cfg.optimizer.lr = 3e-3;
    cfg.optimizer.weight_decay = 0.0;
    train::RealTrainer trainer(c, backend, cfg);
    const auto first = trainer.run_epoch(0);
    train::TrainEpochResult last{};
    for (std::uint64_t e = 1; e < 6; ++e) last = trainer.run_epoch(e);
    EXPECT_LT(last.train_loss, first.train_loss);
    // Replicas remain bit-identical (DDP invariant) across the whole run.
    float checksum = 0;
    for (const auto& p : trainer.model().parameters()) {
      for (const float v : *p.value) checksum += v;
    }
    const auto sums = c.allgather(checksum);
    for (const float s : sums) EXPECT_FLOAT_EQ(s, sums[0]);
  });
}

TEST(Pipeline, WidthChangeDoesNotChangeDeliveredData) {
  // Re-sharding to a different width (e.g. after changing the GPU count,
  // §2.2 of the paper) must be purely an execution-plan change.
  const auto machine = test_machine();
  constexpr std::uint64_t kSamples = 48;
  fs::ParallelFileSystem pfs(machine.fs, 2);
  const auto ds = datagen::make_dataset(DatasetKind::AisdHomoLumo, kSamples, 2);
  formats::CffWriter::stage(pfs, "cff", *ds, 2);
  const formats::CffReader reader(pfs, "cff", 1000);

  for (const int nranks : {2, 4, 8}) {
    for (const int width : {2, nranks}) {
      simmpi::Runtime rt(nranks, machine);
      rt.run([&](simmpi::Comm& c) {
        fs::FsClient client(pfs, machine.node_of_rank(c.world_rank()),
                            c.clock(), c.rng());
        core::DDStoreConfig cfg;
        cfg.width = width;
        core::DDStore store(c, reader, client, cfg);
        for (std::uint64_t id = 0; id < kSamples; id += 5) {
          EXPECT_EQ(store.get(id), ds->make(id))
              << "nranks " << nranks << " width " << width;
        }
      });
    }
  }
}

}  // namespace
}  // namespace dds
