#include <gtest/gtest.h>

#include "datagen/dataset.hpp"
#include "formats/cff.hpp"
#include "formats/pff.hpp"

namespace dds::formats {
namespace {

using datagen::DatasetKind;
using model::test_machine;

class FormatsTest : public ::testing::Test {
 protected:
  FormatsTest()
      : fs_(test_machine().fs, /*nnodes=*/2),
        ds_(datagen::make_dataset(DatasetKind::AisdHomoLumo, 20, 3)),
        client_(fs_, 0, clock_, rng_) {}

  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
  model::VirtualClock clock_;
  Rng rng_{2};
  fs::FsClient client_;
};

TEST_F(FormatsTest, PffStageCreatesOneFilePerSample) {
  PffWriter::stage(fs_, "pff/aisd", *ds_);
  EXPECT_EQ(fs_.file_count(), 20u);
  EXPECT_EQ(fs_.list("pff/aisd/").size(), 20u);
}

TEST_F(FormatsTest, PffRoundTripAllSamples) {
  PffWriter::stage(fs_, "pff/aisd", *ds_);
  PffReader reader(fs_, "pff/aisd", 20,
                   ds_->spec().nominal_pff_sample_bytes());
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(reader.read(i, client_), ds_->make(i)) << "sample " << i;
  }
  EXPECT_EQ(client_.stats().opens, 20u);
}

TEST_F(FormatsTest, PffNominalSizesStamped) {
  PffWriter::stage(fs_, "pff/aisd", *ds_);
  const auto nominal = ds_->spec().nominal_pff_sample_bytes();
  const auto path = PffWriter::sample_path("pff/aisd", 0);
  EXPECT_GE(fs_.nominal_file_size(path), nominal);
  EXPECT_LT(fs_.file_size(path), fs_.nominal_file_size(path) + 1);
}

TEST_F(FormatsTest, PffMissingDatasetThrows) {
  EXPECT_THROW(PffReader(fs_, "pff/none", 20, 1000), IoError);
}

TEST_F(FormatsTest, PffOutOfRangeThrows) {
  PffWriter::stage(fs_, "pff/aisd", *ds_);
  PffReader reader(fs_, "pff/aisd", 20, 1000);
  EXPECT_THROW(reader.read(20, client_), ConfigError);
}

TEST_F(FormatsTest, PffReadChargesMdsAndDecode) {
  PffWriter::stage(fs_, "pff/aisd", *ds_);
  PffReader reader(fs_, "pff/aisd", 20, 1000);
  const double t0 = clock_.now();
  reader.read(0, client_);
  const auto& p = test_machine().fs;
  EXPECT_GT(clock_.now() - t0, p.mds_service_s);  // at least one open
}

TEST_F(FormatsTest, CffSingleSubfileRoundTrip) {
  CffWriter::stage(fs_, "cff/aisd", *ds_, 1);
  EXPECT_EQ(fs_.file_count(), 1u);
  CffReader reader(fs_, "cff/aisd", ds_->spec().nominal_cff_sample_bytes());
  EXPECT_EQ(reader.num_samples(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(reader.read(i, client_), ds_->make(i)) << "sample " << i;
  }
}

TEST_F(FormatsTest, CffMultipleSubfilesRoundTrip) {
  CffWriter::stage(fs_, "cff/aisd", *ds_, 4);
  EXPECT_EQ(fs_.file_count(), 4u);
  CffReader reader(fs_, "cff/aisd", ds_->spec().nominal_cff_sample_bytes());
  EXPECT_EQ(reader.num_samples(), 20u);
  EXPECT_EQ(reader.num_subfiles(), 4u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(reader.read(i, client_), ds_->make(i)) << "sample " << i;
  }
}

TEST_F(FormatsTest, CffUnevenSubfileSplit) {
  // 20 samples over 3 subfiles: 6/7/7 split must still tile contiguously.
  CffWriter::stage(fs_, "cff/aisd", *ds_, 3);
  CffReader reader(fs_, "cff/aisd", 1000);
  EXPECT_EQ(reader.num_samples(), 20u);
  EXPECT_EQ(reader.read(6, client_), ds_->make(6));
  EXPECT_EQ(reader.read(19, client_), ds_->make(19));
}

TEST_F(FormatsTest, CffNominalContainerSize) {
  CffWriter::stage(fs_, "cff/aisd", *ds_, 1);
  const auto path = CffWriter::subfile_path("cff/aisd", 0);
  // 20 samples x ~5.7 KB nominal each.
  EXPECT_GT(fs_.nominal_file_size(path),
            20 * ds_->spec().nominal_cff_sample_bytes());
}

TEST_F(FormatsTest, CffCorruptMagicRejected) {
  CffWriter::stage(fs_, "cff/aisd", *ds_, 1);
  const auto path = CffWriter::subfile_path("cff/aisd", 0);
  ByteBuffer raw = fs_.read_file_raw(path);
  raw[0] = std::byte{0xff};
  fs_.write_file(path, ByteSpan(raw), fs_.nominal_file_size(path));
  EXPECT_THROW(CffReader(fs_, "cff/aisd", 1000), DataError);
}

TEST_F(FormatsTest, CffTruncatedContainerRejected) {
  CffWriter::stage(fs_, "cff/aisd", *ds_, 1);
  const auto path = CffWriter::subfile_path("cff/aisd", 0);
  ByteBuffer raw = fs_.read_file_raw(path);
  raw.resize(raw.size() / 2);
  fs_.write_file(path, ByteSpan(raw));
  EXPECT_THROW(CffReader(fs_, "cff/aisd", 1000), DataError);
}

TEST_F(FormatsTest, CffMissingPrefixThrows) {
  EXPECT_THROW(CffReader(fs_, "cff/none", 1000), IoError);
}

TEST_F(FormatsTest, CffOutOfRangeThrows) {
  CffWriter::stage(fs_, "cff/aisd", *ds_, 2);
  CffReader reader(fs_, "cff/aisd", 1000);
  EXPECT_THROW(reader.read(20, client_), ConfigError);
}

TEST_F(FormatsTest, CffRandomReadsCostMoreThanCachedReads) {
  CffWriter::stage(fs_, "cff/aisd", *ds_, 1);
  CffReader reader(fs_, "cff/aisd", 1000);
  const double t0 = clock_.now();
  reader.read_bytes(5, client_);
  const double miss = clock_.now() - t0;
  const double t1 = clock_.now();
  reader.read_bytes(5, client_);  // same block: page-cache hit
  const double hit = clock_.now() - t1;
  EXPECT_LT(hit, miss);
}

TEST_F(FormatsTest, CffStartupChargesPerSubfile) {
  CffWriter::stage(fs_, "cff/aisd", *ds_, 4);
  CffReader reader(fs_, "cff/aisd", 1000);
  client_.reset_stats();
  reader.charge_startup(client_);
  EXPECT_EQ(client_.stats().opens, 4u);
  EXPECT_GT(clock_.now(), 0.0);
}

TEST_F(FormatsTest, StagedBytesIdenticalAcrossFormats) {
  PffWriter::stage(fs_, "pff/x", *ds_);
  CffWriter::stage(fs_, "cff/x", *ds_, 2);
  PffReader pff(fs_, "pff/x", 20, 1000);
  CffReader cff(fs_, "cff/x", 1000);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(pff.read_bytes(i, client_), cff.read_bytes(i, client_));
  }
}

TEST_F(FormatsTest, MoreSubfilesThanSamplesThrows) {
  const auto tiny = datagen::make_dataset(DatasetKind::Ising, 2, 1);
  EXPECT_THROW(CffWriter::stage(fs_, "cff/tiny", *tiny, 5), InternalError);
}

}  // namespace
}  // namespace dds::formats

namespace dds::formats {
namespace {

TEST(ParallelStaging, EachRankWritesOneSubfileAndAllRoundTrip) {
  const auto machine = dds::model::test_machine();
  fs::ParallelFileSystem pfs(machine.fs, 1);
  const auto ds =
      datagen::make_dataset(datagen::DatasetKind::AisdHomoLumo, 30, 8);
  simmpi::Runtime rt(3, machine);
  rt.run([&](simmpi::Comm& c) {
    fs::FsClient client(pfs, 0, c.clock(), c.rng());
    CffWriter::stage_parallel(c, client, pfs, "par", *ds);
    EXPECT_GT(c.clock().now(), 0.0);  // write time charged
    // Everyone can read the full container after the collective finishes.
    CffReader reader(pfs, "par", ds->spec().nominal_cff_sample_bytes());
    EXPECT_EQ(reader.num_samples(), 30u);
    EXPECT_EQ(reader.num_subfiles(), 3u);
    for (std::uint64_t id = c.rank(); id < 30; id += 3) {
      EXPECT_EQ(reader.read(id, client), ds->make(id));
    }
  });
  EXPECT_EQ(pfs.list("par/").size(), 3u);
}

TEST(ParallelStaging, MatchesSerialStagingBytes) {
  const auto machine = dds::model::test_machine();
  fs::ParallelFileSystem serial_fs(machine.fs, 1);
  fs::ParallelFileSystem parallel_fs(machine.fs, 1);
  const auto ds = datagen::make_dataset(datagen::DatasetKind::Ising, 16, 4);
  CffWriter::stage(serial_fs, "x", *ds, 4);
  simmpi::Runtime rt(4, machine);
  rt.run([&](simmpi::Comm& c) {
    fs::FsClient client(parallel_fs, 0, c.clock(), c.rng());
    CffWriter::stage_parallel(c, client, parallel_fs, "x", *ds);
  });
  for (std::uint32_t sf = 0; sf < 4; ++sf) {
    const auto path = CffWriter::subfile_path("x", sf);
    EXPECT_EQ(serial_fs.read_file_raw(path), parallel_fs.read_file_raw(path))
        << "subfile " << sf;
  }
}

TEST(ParallelStaging, MoreRanksThanSamplesThrows) {
  const auto machine = dds::model::test_machine();
  fs::ParallelFileSystem pfs(machine.fs, 1);
  const auto ds = datagen::make_dataset(datagen::DatasetKind::Ising, 2, 4);
  simmpi::Runtime rt(4, machine);
  EXPECT_THROW(rt.run([&](simmpi::Comm& c) {
                 fs::FsClient client(pfs, 0, c.clock(), c.rng());
                 CffWriter::stage_parallel(c, client, pfs, "x", *ds);
               }),
               InternalError);
}

}  // namespace
}  // namespace dds::formats
