#include "formats/h5f.hpp"

#include <gtest/gtest.h>

#include "datagen/dataset.hpp"

namespace dds::formats {
namespace {

using datagen::DatasetKind;
using model::test_machine;

class H5fTest : public ::testing::Test {
 protected:
  H5fTest()
      : fs_(test_machine().fs, 2),
        ds_(datagen::make_dataset(DatasetKind::AisdHomoLumo, 25, 3)),
        client_(fs_, 0, clock_, rng_) {}

  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
  model::VirtualClock clock_;
  Rng rng_{4};
  fs::FsClient client_;
};

TEST_F(H5fTest, RoundTripAcrossChunkSizes) {
  for (const std::uint32_t chunk : {1u, 4u, 8u, 25u, 100u}) {
    const std::string path = "h5-" + std::to_string(chunk);
    H5fWriter::stage(fs_, path, *ds_, chunk);
    H5fReader reader(fs_, path, ds_->spec().nominal_cff_sample_bytes());
    EXPECT_EQ(reader.num_samples(), 25u);
    EXPECT_EQ(reader.samples_per_chunk(), chunk);
    EXPECT_EQ(reader.num_chunks(), (25 + chunk - 1) / chunk);
    for (std::uint64_t i = 0; i < 25; ++i) {
      EXPECT_EQ(reader.read(i, client_), ds_->make(i))
          << "chunk " << chunk << " sample " << i;
    }
  }
}

TEST_F(H5fTest, RawAndTimedReadsAgree) {
  H5fWriter::stage(fs_, "h5", *ds_, 4);
  H5fReader reader(fs_, "h5", 1000);
  for (std::uint64_t i = 0; i < 25; i += 3) {
    EXPECT_EQ(reader.read_bytes_raw(i), reader.read_bytes(i, client_));
  }
}

TEST_F(H5fTest, ChunkNeighboursBecomeCacheHits) {
  H5fWriter::stage(fs_, "h5", *ds_, 8);
  H5fReader reader(fs_, "h5", 1000);
  const double t0 = clock_.now();
  reader.read_bytes(0, client_);  // cold: whole chunk through the FS
  const double cold = clock_.now() - t0;
  const double t1 = clock_.now();
  reader.read_bytes(1, client_);  // same chunk: cached blocks
  const double warm = clock_.now() - t1;
  EXPECT_LT(warm, cold);
}

TEST_F(H5fTest, LargerChunksReadMoreNominalBytes) {
  const auto spec_nominal = ds_->spec().nominal_cff_sample_bytes();
  H5fWriter::stage(fs_, "small", *ds_, 1);
  H5fWriter::stage(fs_, "large", *ds_, 25);
  H5fReader small(fs_, "small", spec_nominal);
  H5fReader large(fs_, "large", spec_nominal);
  client_.reset_stats();
  small.read_bytes(10, client_);
  const auto small_bytes = client_.stats().nominal_bytes_read;
  client_.reset_stats();
  large.read_bytes(10, client_);
  EXPECT_GT(client_.stats().nominal_bytes_read, small_bytes);
}

TEST_F(H5fTest, CorruptMagicRejected) {
  H5fWriter::stage(fs_, "h5", *ds_, 4);
  ByteBuffer raw = fs_.read_file_raw("h5");
  raw[0] = std::byte{0x00};
  fs_.write_file("h5", ByteSpan(raw), fs_.nominal_file_size("h5"));
  EXPECT_THROW(H5fReader(fs_, "h5", 1000), DataError);
}

TEST_F(H5fTest, TruncatedFileRejected) {
  H5fWriter::stage(fs_, "h5", *ds_, 4);
  ByteBuffer raw = fs_.read_file_raw("h5");
  raw.resize(raw.size() * 2 / 3);
  fs_.write_file("h5", ByteSpan(raw));
  EXPECT_THROW(H5fReader(fs_, "h5", 1000), DataError);
}

TEST_F(H5fTest, OutOfRangeThrows) {
  H5fWriter::stage(fs_, "h5", *ds_, 4);
  H5fReader reader(fs_, "h5", 1000);
  EXPECT_THROW(reader.read(25, client_), ConfigError);
}

TEST_F(H5fTest, NominalContainerSizeStamped) {
  H5fWriter::stage(fs_, "h5", *ds_, 8);
  EXPECT_GE(fs_.nominal_file_size("h5"),
            25 * ds_->spec().nominal_cff_sample_bytes());
}

}  // namespace
}  // namespace dds::formats
