#include "elastic/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/bytes.hpp"
#include "model/machine.hpp"

namespace dds::elastic {
namespace {

/// A layout over synthetic per-sample lengths, built without any runtime:
/// the registry is constructed straight from the placement arithmetic.
core::Layout make_layout(int nranks, int width, core::Placement placement,
                         const std::vector<std::uint32_t>& sample_lengths) {
  const core::ChunkAssignment a(sample_lengths.size(), width, placement);
  std::vector<std::uint32_t> lengths;
  std::vector<std::size_t> counts;
  std::vector<std::uint64_t> checksums;
  for (int g = 0; g < width; ++g) {
    const auto ids = a.ids_of(g);
    counts.push_back(ids.size());
    for (const std::uint64_t id : ids) {
      lengths.push_back(sample_lengths[id]);
      checksums.push_back(id * 1315423911ULL + 17);  // distinct, nonzero
    }
  }
  auto reg = core::DataRegistry::build(
      a, std::span<const std::uint32_t>(lengths),
      std::span<const std::size_t>(counts),
      std::span<const std::uint64_t>(checksums));
  return core::Layout(nranks, width, placement, std::move(reg));
}

std::vector<std::uint32_t> varied_lengths(std::uint64_t n) {
  std::vector<std::uint32_t> lengths(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    lengths[i] = 64 + static_cast<std::uint32_t>((i * 37) % 129);
  }
  return lengths;
}

/// Keeps + pulls must tile the rank's new chunk exactly (conservation).
void expect_tiles_new_chunk(const RankReshardPlan& rp) {
  std::vector<CopySegment> all = rp.keeps;
  for (const PullPlan& pull : rp.pulls) {
    all.insert(all.end(), pull.segments.begin(), pull.segments.end());
  }
  std::sort(all.begin(), all.end(),
            [](const CopySegment& a, const CopySegment& b) {
              return a.dst_offset < b.dst_offset;
            });
  std::uint64_t covered = 0;
  for (const CopySegment& seg : all) {
    EXPECT_EQ(seg.dst_offset, covered) << "gap or overlap in rank "
                                       << rp.rank << "'s destination tiling";
    covered += seg.length;
  }
  EXPECT_EQ(covered, rp.new_chunk_bytes);
  EXPECT_EQ(rp.keep_bytes + rp.pull_bytes, rp.new_chunk_bytes);
}

/// Materializes every rank's old chunk (byte = f(sample id, position)),
/// executes the plan with plain memcpy, and checks the rebuilt chunks are
/// byte-identical to chunks preloaded directly under the new layout.
void expect_byte_identity(const core::Layout& from, const core::Layout& to,
                          const ReshardPlan& plan) {
  auto chunk_under = [](const core::Layout& layout, int rank) {
    const core::ChunkAssignment a = layout.assignment();
    const int g = layout.group_rank_of(rank);
    ByteBuffer chunk(layout.chunk_bytes(g));
    std::uint64_t off = 0;
    for (const std::uint64_t id : a.ids_of(g)) {
      const auto& e = layout.registry().lookup(id);
      EXPECT_EQ(e.offset, off);
      for (std::uint32_t i = 0; i < e.length; ++i) {
        chunk[off + i] = static_cast<std::byte>((id * 131 + i) & 0xFF);
      }
      off += e.length;
    }
    return chunk;
  };

  std::vector<ByteBuffer> old_chunks;
  for (int r = 0; r < from.nranks(); ++r) {
    old_chunks.push_back(chunk_under(from, r));
  }
  for (int r = 0; r < from.nranks(); ++r) {
    const RankReshardPlan& rp = plan.ranks[static_cast<std::size_t>(r)];
    ByteBuffer rebuilt(rp.new_chunk_bytes);
    for (const CopySegment& seg : rp.keeps) {
      std::memcpy(rebuilt.data() + seg.dst_offset,
                  old_chunks[static_cast<std::size_t>(r)].data() +
                      seg.src_offset,
                  seg.length);
    }
    for (const PullPlan& pull : rp.pulls) {
      for (const CopySegment& seg : pull.segments) {
        std::memcpy(rebuilt.data() + seg.dst_offset,
                    old_chunks[static_cast<std::size_t>(pull.source)].data() +
                        seg.src_offset,
                    seg.length);
      }
    }
    EXPECT_EQ(rebuilt, chunk_under(to, r)) << "rank " << r;
  }
}

TEST(ReshardPlan, PropertiesHoldAcrossWidthsAndPlacements) {
  const auto lengths = varied_lengths(96);
  for (const core::Placement p :
       {core::Placement::Block, core::Placement::RoundRobin}) {
    for (const int w_old : {1, 2, 4, 8}) {
      for (const int w_new : {1, 2, 4, 8}) {
        if (w_old == w_new) continue;
        const core::Layout from = make_layout(8, w_old, p, lengths);
        const core::Layout to = from.with_width(w_new);
        const ReshardPlan plan = plan_reshard(from, to);
        ASSERT_EQ(plan.ranks.size(), 8u);
        for (const RankReshardPlan& rp : plan.ranks) {
          expect_tiles_new_chunk(rp);
          for (const PullPlan& pull : rp.pulls) {
            EXPECT_NE(pull.source, rp.rank) << "self-send";
            EXPECT_EQ(std::accumulate(
                          pull.segments.begin(), pull.segments.end(),
                          std::uint64_t{0},
                          [](std::uint64_t s, const CopySegment& seg) {
                            return s + seg.length;
                          }),
                      pull.bytes);
          }
          // Minimality: never move more than a naive full restripe would.
          EXPECT_LE(rp.pull_bytes, rp.new_chunk_bytes);
        }
        expect_byte_identity(from, to, plan);
      }
    }
  }
}

TEST(ReshardPlan, SameWidthMovesNothing) {
  const core::Layout from =
      make_layout(8, 4, core::Placement::Block, varied_lengths(64));
  const ReshardPlan plan = plan_reshard(from, from);
  EXPECT_EQ(plan.total_pull_bytes, 0u);
  for (const RankReshardPlan& rp : plan.ranks) {
    EXPECT_TRUE(rp.pulls.empty());
    EXPECT_EQ(rp.keep_bytes, rp.new_chunk_bytes);
    // Identity keeps merge into a single whole-chunk segment.
    ASSERT_EQ(rp.keeps.size(), 1u);
    EXPECT_EQ(rp.keeps[0].src_offset, 0u);
    EXPECT_EQ(rp.keeps[0].dst_offset, 0u);
  }
}

TEST(ReshardPlan, WideningReusesResidentPrefix) {
  // Block placement, width 2 -> 4: each rank's new chunk is a sub-range of
  // some old chunk, so keeps dominate where old owner == new holder.
  const core::Layout from =
      make_layout(8, 2, core::Placement::Block, varied_lengths(64));
  const core::Layout to = from.with_width(4);
  const ReshardPlan plan = plan_reshard(from, to);
  EXPECT_LT(plan.total_pull_bytes,
            plan.total_pull_bytes + plan.total_keep_bytes)
      << "some bytes must be reused";
  // Rank 0: old chunk 0 (first half), new chunk 0 (first quarter) — fully
  // resident, zero pulls.
  EXPECT_EQ(plan.ranks[0].pull_bytes, 0u);
}

TEST(ReshardPlan, ExcludedSourcesAreSkipped) {
  const core::Layout from =
      make_layout(8, 2, core::Placement::Block, varied_lengths(64));
  const core::Layout to = from.with_width(4);
  // Rank 1 (old group 0, chunk 1) would be a natural source for group-0
  // pullers; excluding it must route them to its twins (ranks 3, 5, 7).
  const std::vector<int> excluded = {1};
  const ReshardPlan plan =
      plan_reshard(from, to, std::span<const int>(excluded));
  for (const RankReshardPlan& rp : plan.ranks) {
    for (const PullPlan& pull : rp.pulls) {
      EXPECT_NE(pull.source, 1);
    }
  }
}

TEST(ReshardPlan, ThrowsWhenEveryHolderIsExcluded) {
  // Width 8 = one replica group: excluding rank 3 removes sample bytes no
  // other rank holds.
  const core::Layout from =
      make_layout(8, 8, core::Placement::Block, varied_lengths(64));
  const core::Layout to = from.with_width(4);
  const std::vector<int> excluded = {3};
  EXPECT_THROW(plan_reshard(from, to, std::span<const int>(excluded)),
               IoError);
}

TEST(WithWidth, PreservesPerSampleFacts) {
  const auto lengths = varied_lengths(96);
  const core::Layout from =
      make_layout(8, 4, core::Placement::RoundRobin, lengths);
  const core::Layout to = from.with_width(2);
  EXPECT_EQ(to.width(), 2);
  EXPECT_EQ(to.num_groups(), 4);
  EXPECT_EQ(to.num_samples(), from.num_samples());
  const core::ChunkAssignment a = to.assignment();
  for (std::uint64_t id = 0; id < to.num_samples(); ++id) {
    const auto& e_old = from.registry().lookup(id);
    const auto& e_new = to.registry().lookup(id);
    EXPECT_EQ(e_new.length, e_old.length);
    EXPECT_EQ(e_new.checksum, e_old.checksum);
    EXPECT_EQ(static_cast<int>(e_new.owner), a.owner_of(id));
  }
}

TEST(PlanRebuild, DeadRankPullsWholeChunkFromTwin) {
  const core::Layout layout =
      make_layout(8, 4, core::Placement::Block, varied_lengths(64));
  const ReshardPlan plan = plan_rebuild(layout, /*dead_rank=*/2);
  for (int r = 0; r < 8; ++r) {
    const RankReshardPlan& rp = plan.ranks[static_cast<std::size_t>(r)];
    if (r != 2) {
      EXPECT_TRUE(rp.pulls.empty());
      EXPECT_TRUE(rp.keeps.empty());
      continue;
    }
    ASSERT_EQ(rp.pulls.size(), 1u);
    const PullPlan& pull = rp.pulls[0];
    EXPECT_EQ(pull.source, 6);  // same group rank, sibling group
    EXPECT_EQ(pull.bytes, layout.chunk_bytes(2));
    ASSERT_EQ(pull.segments.size(), 1u);
    EXPECT_EQ(pull.segments[0].length, pull.bytes);
  }
  EXPECT_GT(estimate_reshard_seconds(plan, model::test_machine(), 1 * MiB),
            0.0);
}

TEST(PlanRebuild, SingleReplicaGroupThrows) {
  const core::Layout layout =
      make_layout(8, 8, core::Placement::Block, varied_lengths(64));
  EXPECT_THROW(plan_rebuild(layout, 2), IoError);
}

TEST(EstimateReshard, ScalesWithNominalBytes) {
  const core::Layout from =
      make_layout(8, 8, core::Placement::Block, varied_lengths(64));
  const core::Layout to = from.with_width(4);
  const ReshardPlan plan = plan_reshard(from, to);
  const model::MachineConfig machine = model::test_machine();
  const double small = estimate_reshard_seconds(plan, machine, 64 * KiB);
  const double large = estimate_reshard_seconds(plan, machine, 64 * MiB);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace dds::elastic
