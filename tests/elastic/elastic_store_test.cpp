// End-to-end elasticity: byte identity under reshard sequences, the
// dead-rank rebuild hook, and the adaptive controller converging on a
// live store.  The contract under test is ISSUE 5's acceptance bar: after
// ANY sequence of reshards (including a fault rebuild), every sample's
// bytes and checksums match what a static-width store serves.
#include <gtest/gtest.h>

#include "common/checksum.hpp"
#include "datagen/dataset.hpp"
#include "elastic/driver.hpp"
#include "elastic/executor.hpp"
#include "formats/cff.hpp"

namespace dds::elastic {
namespace {

using core::DDStore;
using core::DDStoreConfig;
using datagen::DatasetKind;
using model::test_machine;

constexpr std::uint64_t kSamples = 64;

class ElasticStoreTest : public ::testing::Test {
 protected:
  ElasticStoreTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/4),
        ds_(datagen::make_dataset(DatasetKind::AisdHomoLumo, kSamples, 7)) {
    formats::CffWriter::stage(fs_, "cff/ds", *ds_, 2);
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  formats::CffReader cff_reader() {
    return formats::CffReader(fs_, "cff/ds",
                              ds_->spec().nominal_cff_sample_bytes());
  }

  /// Every sample's fetched bytes must match the dataset ground truth AND
  /// the registry's recorded checksum under the store's current layout.
  void expect_byte_identity(DDStore& store) {
    for (std::uint64_t id = 0; id < kSamples; ++id) {
      const ByteBuffer bytes = store.get_bytes(id);
      const auto& entry = store.registry().lookup(id);
      ASSERT_EQ(bytes.size(), entry.length) << "sample " << id;
      EXPECT_EQ(checksum64(ByteSpan(bytes)), entry.checksum)
          << "sample " << id;
      EXPECT_EQ(store.get(id), ds_->make(id)) << "sample " << id;
    }
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
};

TEST_F(ElasticStoreTest, ReshardSequencePreservesEverySample) {
  simmpi::Runtime rt(8, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.width = 4;
    cfg.elastic = true;
    DDStore store(c, reader, client, cfg);

    // Walk the width ladder both directions; verify after every swap.
    for (const int width : {2, 4, 8, 1, 4}) {
      reshard(store, width);
      EXPECT_EQ(store.width(), width);
      EXPECT_EQ(store.num_replicas(), 8 / width);
      EXPECT_EQ(store.group().size(), width);
      expect_byte_identity(store);
    }
    EXPECT_EQ(store.stats().reshards, 5u);
    EXPECT_GT(store.stats().reshard_keep_bytes, 0u)
        << "minimal movement must reuse resident bytes somewhere";
    store.fence();
  });
}

TEST_F(ElasticStoreTest, SameWidthReshardIsANoOp) {
  simmpi::Runtime rt(8, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.width = 4;
    cfg.elastic = true;
    DDStore store(c, reader, client, cfg);
    const ReshardPlan plan = reshard(store, 4);
    EXPECT_TRUE(plan.ranks.empty());
    EXPECT_EQ(store.stats().reshards, 0u);
  });
}

TEST_F(ElasticStoreTest, ReshardWithoutElasticFlagIsRefused) {
  simmpi::Runtime rt(8, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.width = 4;  // note: elastic stays false
    DDStore store(c, reader, client, cfg);
    EXPECT_THROW(reshard(store, 2), InternalError);
  });
}

TEST_F(ElasticStoreTest, CacheStaysValidAcrossReshard) {
  simmpi::Runtime rt(8, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.width = 4;
    cfg.elastic = true;
    cfg.cache_capacity_bytes = 64ull << 20;
    DDStore store(c, reader, client, cfg);
    for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get_bytes(id);
    reshard(store, 2);
    // Keys are sample ids — the warm cache survives the swap and still
    // serves correct bytes under the new striping.
    expect_byte_identity(store);
    EXPECT_GT(store.stats().cache_hits, 0u);
  });
}

TEST_F(ElasticStoreTest, DeadRankIsRebuiltFromItsTwinAndRevived) {
  simmpi::Runtime rt(8, machine_, /*seed=*/42, /*deterministic=*/false);
  faults::FaultConfig fc;
  fc.dead_rank = 2;  // group 0 member; its twin (rank 6) lives in group 1
  fc.death_time_s = 0.0;
  rt.set_fault_injector(std::make_shared<faults::FaultInjector>(fc, 8));
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.width = 4;
    cfg.elastic = true;
    DDStore store(c, reader, client, cfg);
    ElasticConfig ecfg;
    ecfg.adapt_width = false;  // isolate the fault-recovery hook
    ElasticDriver driver(store, ecfg);

    // Epoch 1: fetches targeting rank 2 fail over to its twin; breakers
    // trip, which is the suspicion signal the driver aggregates.
    const double t0 = c.clock().now();
    for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get_bytes(id);
    driver.on_epoch_end(c.clock().now() - t0);

    EXPECT_STREQ(driver.last_reason(), "recovering");
    EXPECT_EQ(store.stats().rank_rebuilds, c.rank() == 2 ? 1u : 0u);
    EXPECT_FALSE(store.breaker_open(2));

    // Epoch 2: the revived rank serves again — no failovers, no degraded
    // reads, and every byte is still right.
    const std::uint64_t failovers_before = store.stats().failovers;
    expect_byte_identity(store);
    EXPECT_EQ(store.stats().failovers, failovers_before);
    EXPECT_EQ(store.stats().degraded_reads, 0u);

    // Elasticity composes with recovery: reshard after the rebuild and
    // verify the identity once more.
    reshard(store, 2);
    expect_byte_identity(store);
    store.fence();
  });
}

TEST_F(ElasticStoreTest, SingleReplicaGroupStaysDegradedInsteadOfRebuilding) {
  simmpi::Runtime rt(8, machine_, /*seed=*/42, /*deterministic=*/false);
  faults::FaultConfig fc;
  fc.dead_rank = 2;  // width 8 = one group: no twin exists
  rt.set_fault_injector(std::make_shared<faults::FaultInjector>(fc, 8));
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.width = 8;
    cfg.elastic = true;
    DDStore store(c, reader, client, cfg);
    ElasticDriver driver(store, ElasticConfig{.adapt_width = false});

    const double t0 = c.clock().now();
    for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get_bytes(id);
    driver.on_epoch_end(c.clock().now() - t0);

    // No sibling group: the driver must leave the store in degraded mode
    // (FS fallback) rather than attempt an impossible rebuild.
    EXPECT_EQ(store.stats().rank_rebuilds, 0u);
    if (c.rank() != 2) {
      EXPECT_GT(store.stats().degraded_reads, 0u);
    }
    store.fence();
  });
}

TEST_F(ElasticStoreTest, AdaptiveControllerConvergesToTheFeasibleFloor) {
  simmpi::Runtime rt(8, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.width = 8;
    cfg.elastic = true;
    DDStore store(c, reader, client, cfg);

    // Budget floor at width 2: width-1 chunks (the whole dataset) exceed
    // the budget, width-2 chunks fit.
    const std::uint64_t dataset_bytes =
        store.num_samples() * store.nominal_sample_bytes();
    ElasticConfig ecfg;
    ecfg.memory_budget_per_rank = dataset_bytes / 2 + 1;
    ElasticDriver driver(store, ecfg);

    for (int epoch = 0; epoch < 6; ++epoch) {
      const double t0 = c.clock().now();
      for (std::uint64_t id = 0; id < kSamples; ++id) (void)store.get(id);
      c.barrier();
      driver.on_epoch_end(c.clock().now() - t0);
    }
    EXPECT_EQ(store.width(), 2);
    EXPECT_TRUE(driver.controller().converged());
    // The trajectory walks monotonically down the divisor ladder.
    const std::vector<int>& traj = driver.width_trajectory();
    ASSERT_GE(traj.size(), 2u);
    EXPECT_EQ(traj.front(), 8);
    for (std::size_t i = 1; i < traj.size(); ++i) {
      EXPECT_LE(traj[i], traj[i - 1]);
    }
    expect_byte_identity(store);
    store.fence();
  });
}

}  // namespace
}  // namespace dds::elastic
