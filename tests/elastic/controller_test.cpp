#include "elastic/controller.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/units.hpp"

namespace dds::elastic {
namespace {

/// An observation where remote fetches dominate: stepping down looks good.
WidthObservation remote_heavy(double epoch_seconds) {
  WidthObservation obs;
  obs.epoch_seconds = epoch_seconds;
  obs.fetch_seconds = epoch_seconds * 0.8;
  obs.local_gets = 100;
  obs.remote_gets = 700;
  return obs;
}

TEST(WidthLadder, DivisorStepsRespectBudget) {
  WidthControllerConfig cfg;
  cfg.memory_budget_per_rank = 3 * GiB;  // width 4 chunks (2 GiB) fit,
                                         // width 2 chunks (4 GiB) do not
  AdaptiveWidthController c(8, 8 * GiB, cfg);
  EXPECT_TRUE(c.fits_budget(8));
  EXPECT_TRUE(c.fits_budget(4));
  EXPECT_FALSE(c.fits_budget(2));
  EXPECT_EQ(c.next_down(8), 4);
  EXPECT_EQ(c.next_down(4), 4);  // 2 and 1 are over budget: ladder bottom
  EXPECT_EQ(c.next_up(4), 8);
  EXPECT_EQ(c.next_up(8), 8);
}

TEST(Controller, WalksDownToTheFeasibleFloorAndSettles) {
  WidthControllerConfig cfg;
  cfg.memory_budget_per_rank = 5 * GiB;  // floor at width 2 (4 GiB chunks)
  AdaptiveWidthController c(8, 8 * GiB, cfg);

  // Cheap reshard, remote-heavy epochs: 8 -> 4 -> 2, then settle.
  auto d1 = c.on_epoch(8, remote_heavy(10.0), /*cost_down_s=*/0.5);
  EXPECT_EQ(d1.target_width, 4);
  EXPECT_STREQ(d1.reason, "step_down");
  auto d2 = c.on_epoch(4, remote_heavy(8.0), 0.5);  // improved: accepted
  EXPECT_EQ(d2.target_width, 2);
  auto d3 = c.on_epoch(2, remote_heavy(7.0), 0.5);
  EXPECT_EQ(d3.target_width, 2);
  EXPECT_STREQ(d3.reason, "settled");
  EXPECT_TRUE(c.converged());
  // Settled controllers hold.
  EXPECT_STREQ(c.on_epoch(2, remote_heavy(7.0), 0.5).reason, "settled");
}

TEST(Controller, RevertsOnMeasuredRegression) {
  AdaptiveWidthController c(8, 8 * GiB, WidthControllerConfig{});
  auto d1 = c.on_epoch(8, remote_heavy(10.0), 0.5);
  ASSERT_EQ(d1.target_width, 4);
  // The step made things measurably worse: revert and settle.
  auto d2 = c.on_epoch(4, remote_heavy(12.0), 0.5);
  EXPECT_EQ(d2.target_width, 8);
  EXPECT_STREQ(d2.reason, "revert");
  EXPECT_TRUE(c.converged());
}

TEST(Controller, ToleranceAcceptsSmallNoise) {
  WidthControllerConfig cfg;
  cfg.step_tolerance = 0.05;
  AdaptiveWidthController c(8, 8 * GiB, cfg);
  ASSERT_EQ(c.on_epoch(8, remote_heavy(10.0), 0.5).target_width, 4);
  // 2% slower is inside the 5% tolerance: keep exploring, not revert.
  auto d = c.on_epoch(4, remote_heavy(10.2), 0.5);
  EXPECT_NE(std::string(d.reason), "revert");
}

TEST(Controller, BudgetViolationForcesStepUpEvenWhenSettled) {
  WidthControllerConfig cfg;
  cfg.memory_budget_per_rank = 3 * GiB;
  AdaptiveWidthController c(8, 8 * GiB, cfg);
  // Width 2 holds 4 GiB chunks — over budget, cost is irrelevant.
  auto d = c.on_epoch(2, remote_heavy(5.0), 1e9);
  EXPECT_EQ(d.target_width, 4);
  EXPECT_STREQ(d.reason, "budget_up");
}

TEST(Controller, ExpensiveReshardBlocksTheStep) {
  AdaptiveWidthController c(8, 8 * GiB, WidthControllerConfig{});
  // Saving ~ seconds/epoch, cost astronomically larger: hold and settle.
  auto d = c.on_epoch(8, remote_heavy(10.0), /*cost_down_s=*/1e6);
  EXPECT_EQ(d.target_width, 8);
  EXPECT_STREQ(d.reason, "settled");
  EXPECT_TRUE(c.converged());
}

TEST(Controller, AllLocalWorkloadHasNothingToGain) {
  AdaptiveWidthController c(8, 8 * GiB, WidthControllerConfig{});
  WidthObservation obs;
  obs.epoch_seconds = 10.0;
  obs.fetch_seconds = 8.0;
  obs.local_gets = 800;
  obs.remote_gets = 0;  // zero remote share => zero modeled saving
  auto d = c.on_epoch(8, obs, 0.001);
  EXPECT_EQ(d.target_width, 8);
  EXPECT_TRUE(c.converged());
}

}  // namespace
}  // namespace dds::elastic
