// Elastic x tiered: re-striping a hot-shard store.  The planner must move
// only the hot set (keeps + RMA pulls), classify hot-in-new-but-cold-in-old
// samples as cold re-staging work, and price that work with the analytic
// staging-queue model the executor charges — unit-tested here against a
// hand-computed estimate.  A live reshard sequence over a tiered store must
// still deliver byte-identical samples afterwards.
#include <gtest/gtest.h>

#include <cmath>

#include "common/checksum.hpp"
#include "datagen/dataset.hpp"
#include "elastic/executor.hpp"
#include "elastic/plan.hpp"
#include "formats/cff.hpp"

namespace dds::elastic {
namespace {

using core::DDStore;
using core::DDStoreConfig;
using datagen::DatasetKind;
using model::test_machine;

constexpr std::uint64_t kSamples = 64;

/// A tiered layout over synthetic per-sample lengths, built without any
/// runtime (same helper shape as reshard_plan_test.cpp).
core::Layout make_layout(int nranks, int width, double hot_fraction,
                         const std::vector<std::uint32_t>& sample_lengths) {
  const core::ChunkAssignment a(sample_lengths.size(), width,
                                core::Placement::Block);
  std::vector<std::uint32_t> lengths;
  std::vector<std::size_t> counts;
  std::vector<std::uint64_t> checksums;
  for (int g = 0; g < width; ++g) {
    const auto ids = a.ids_of(g);
    counts.push_back(ids.size());
    for (const std::uint64_t id : ids) {
      lengths.push_back(sample_lengths[id]);
      checksums.push_back(id * 1315423911ULL + 17);
    }
  }
  auto reg = core::DataRegistry::build(
      a, std::span<const std::uint32_t>(lengths),
      std::span<const std::size_t>(counts),
      std::span<const std::uint64_t>(checksums));
  return core::Layout(nranks, width, core::Placement::Block, std::move(reg),
                      hot_fraction);
}

std::vector<std::uint32_t> varied_lengths(std::uint64_t n) {
  std::vector<std::uint32_t> lengths(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    lengths[i] = 64 + static_cast<std::uint32_t>((i * 37) % 129);
  }
  return lengths;
}

TEST(TieredReshardPlan, OnlyTheHotSetMovesAndColdStagesAreClassified) {
  const auto lengths = varied_lengths(96);
  const core::Layout from = make_layout(8, 4, 0.5, lengths);
  const core::Layout to = from.with_width(2);
  ASSERT_TRUE(to.tiered());
  ASSERT_DOUBLE_EQ(to.hot_fraction(), 0.5);  // with_width carries the knob
  const ReshardPlan plan = plan_reshard(from, to);

  std::uint64_t classified_cold = 0;
  for (const RankReshardPlan& rp : plan.ranks) {
    const int owner_new = to.group_rank_of(rp.rank);
    // Every classified byte is hot under the new layout; keeps + pulls +
    // cold_stages tile exactly the hot prefix, nothing more.
    EXPECT_EQ(rp.keep_bytes + rp.pull_bytes + rp.cold_stage_bytes,
              to.hot_prefix_bytes(owner_new))
        << "rank " << rp.rank;
    for (const PullPlan& pull : rp.pulls) {
      EXPECT_NE(pull.source, rp.rank) << "self-send";
    }
    // cold_stages must be exactly the hot-in-to-but-cold-in-from samples.
    std::uint64_t expect_cold_samples = 0;
    for (const std::uint64_t id : to.assignment().ids_of(owner_new)) {
      if (to.is_hot(id) && !from.is_hot(id)) ++expect_cold_samples;
    }
    EXPECT_EQ(rp.cold_stage_samples, expect_cold_samples)
        << "rank " << rp.rank;
    classified_cold += rp.cold_stage_bytes;
  }
  EXPECT_EQ(plan.total_cold_stage_bytes, classified_cold);
  EXPECT_GT(plan.total_cold_stage_bytes, 0u)
      << "halving the width doubles each chunk: its new hot prefix must "
         "reach samples that were cold before";
}

TEST(TieredReshardPlan, FullHotFractionMatchesUntieredPlan) {
  const auto lengths = varied_lengths(96);
  const core::Layout from = make_layout(8, 4, 1.0, lengths);
  const ReshardPlan plan = plan_reshard(from, from.with_width(2));
  EXPECT_EQ(plan.total_cold_stage_bytes, 0u);
  for (const RankReshardPlan& rp : plan.ranks) {
    EXPECT_TRUE(rp.cold_stages.empty());
    EXPECT_EQ(rp.keep_bytes + rp.pull_bytes, rp.new_chunk_bytes);
  }
}

TEST(TieredReshardPlan, RebuildPullsHotPrefixAndStagesColdSuffix) {
  const core::Layout layout = make_layout(8, 4, 0.5, varied_lengths(64));
  const ReshardPlan plan = plan_rebuild(layout, /*dead_rank=*/2);
  const RankReshardPlan& rp = plan.ranks[2];
  const int owner = layout.group_rank_of(2);
  ASSERT_EQ(rp.pulls.size(), 1u);
  EXPECT_EQ(rp.pulls[0].bytes, layout.hot_prefix_bytes(owner));
  EXPECT_EQ(rp.pulls[0].samples, layout.hot_samples_of(owner));
  ASSERT_EQ(rp.cold_stages.size(), 1u);
  EXPECT_EQ(rp.cold_stage_bytes,
            layout.chunk_bytes(owner) - layout.hot_prefix_bytes(owner));
  EXPECT_EQ(rp.pull_bytes + rp.cold_stage_bytes, layout.chunk_bytes(owner));
}

TEST(TieredReshardEstimate, ColdStageModelMatchesAnalyticFormula) {
  const model::FsParams& fs = test_machine().fs;
  const std::uint64_t nominal = 1 * MiB;
  for (const int depth : {1, 4, 8}) {
    for (const std::uint64_t samples : {1ULL, 7ULL, 8ULL, 33ULL}) {
      const double rounds = std::ceil(static_cast<double>(samples) /
                                      static_cast<double>(depth));
      const double expected =
          rounds * (fs.read_latency_s + fs.random_read_penalty_s) +
          static_cast<double>(samples * nominal) / fs.aggregate_bandwidth_Bps;
      EXPECT_DOUBLE_EQ(cold_stage_seconds(samples, nominal, fs, depth),
                       expected)
          << "samples " << samples << " depth " << depth;
    }
  }
  EXPECT_DOUBLE_EQ(cold_stage_seconds(0, nominal, fs, 8), 0.0);
}

TEST(TieredReshardEstimate, EstimateIsSlowestRankIncludingColdTerm) {
  const auto lengths = varied_lengths(96);
  const core::Layout from = make_layout(8, 4, 0.5, lengths);
  const core::Layout to = from.with_width(2);
  const ReshardPlan plan = plan_reshard(from, to);
  const model::MachineConfig machine = test_machine();
  const std::uint64_t nominal = 1 * MiB;
  const int depth = 8;

  // Recompute the estimate from the documented formula: per rank, each
  // pull pays overhead + latency + per-extra-segment descriptor cost +
  // nominal wire bytes; keeps pay the memcpy; cold stages pay the
  // staging-queue model.  The estimate is the slowest rank.
  double worst = 0.0;
  for (const RankReshardPlan& rp : plan.ranks) {
    double t = 0.0;
    for (const PullPlan& pull : rp.pulls) {
      const bool intra =
          machine.node_of_rank(rp.rank) == machine.node_of_rank(pull.source);
      t += (intra ? machine.net.rma_intra_overhead_s
                  : machine.net.rma_remote_overhead_s) +
           (intra ? machine.net.intra_latency_s
                  : machine.net.inter_latency_s) +
           static_cast<double>(pull.segments.size() - 1) *
               machine.net.rma_segment_overhead_s +
           static_cast<double>(pull.samples * nominal) /
               (intra ? machine.net.intra_bandwidth_Bps
                      : machine.net.inter_bandwidth_Bps);
    }
    if (rp.keep_samples > 0) {
      t += static_cast<double>(rp.keep_samples * nominal) /
           machine.cpu.memcpy_bandwidth_Bps;
    }
    t += cold_stage_seconds(rp.cold_stage_samples, nominal, machine.fs, depth);
    worst = std::max(worst, t);
  }
  EXPECT_DOUBLE_EQ(estimate_reshard_seconds(plan, machine, nominal, depth),
                   worst);
  // The cold term must actually be priced in: a deeper queue amortizes the
  // per-round latency, so the estimate strictly decreases with depth.
  EXPECT_GT(estimate_reshard_seconds(plan, machine, nominal, 1),
            estimate_reshard_seconds(plan, machine, nominal, 16));
}

// ---- live store: reshard a tiered store ----------------------------------

class TieredElasticStoreTest : public ::testing::Test {
 protected:
  TieredElasticStoreTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/4),
        ds_(datagen::make_dataset(DatasetKind::AisdHomoLumo, kSamples, 7)) {
    formats::CffWriter::stage(fs_, "cff/ds", *ds_, 2);
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  formats::CffReader cff_reader() {
    return formats::CffReader(fs_, "cff/ds",
                              ds_->spec().nominal_cff_sample_bytes());
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
};

TEST_F(TieredElasticStoreTest, ReshardSequencePreservesEverySample) {
  simmpi::Runtime rt(8, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    DDStoreConfig cfg;
    cfg.width = 4;
    cfg.elastic = true;
    cfg.tiered.hot_fraction = 0.5;
    DDStore store(c, reader, client, cfg);

    for (const int width : {2, 8, 4}) {
      reshard(store, width);
      EXPECT_EQ(store.width(), width);
      EXPECT_TRUE(store.layout().tiered());
      for (std::uint64_t id = 0; id < kSamples; ++id) {
        const ByteBuffer bytes = store.get_bytes(id);
        const auto& entry = store.registry().lookup(id);
        ASSERT_EQ(bytes.size(), entry.length) << "sample " << id;
        EXPECT_EQ(checksum64(ByteSpan(bytes)), entry.checksum)
            << "sample " << id << " width " << width;
      }
    }
    EXPECT_EQ(store.stats().reshards, 3u);
    EXPECT_GT(store.stats().reshard_cold_stage_bytes, 0u)
        << "some re-striped hot samples must have been cold before";
    store.fence();
  });
}

}  // namespace
}  // namespace dds::elastic
