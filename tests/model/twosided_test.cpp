#include <gtest/gtest.h>

#include "model/network.hpp"

namespace dds::model {
namespace {

class TwoSidedTest : public ::testing::Test {
 protected:
  MachineConfig m_ = test_machine();
};

TEST_F(TwoSidedTest, SelfFetchBypassesBroker) {
  NetworkModel net(m_, 8);
  EXPECT_DOUBLE_EQ(net.two_sided_fetch_time(3, 3, 1000, 1.0, /*poll=*/1.0),
                   net.local_get_time(1000, 1.0));
}

TEST_F(TwoSidedTest, PollDelayOnCriticalPath) {
  NetworkModel net(m_, 8);
  const double fast = net.two_sided_fetch_time(0, 4, 1000, 0.0, 100e-6);
  NetworkModel net2(m_, 8);
  const double slow = net2.two_sided_fetch_time(0, 4, 1000, 0.0, 10e-3);
  EXPECT_NEAR(slow - fast, 10e-3 - 100e-6, 1e-6);
}

TEST_F(TwoSidedTest, PaysSoftwareOverheadPerMessage) {
  NetworkModel net(m_, 8);
  const double t = net.two_sided_fetch_time(0, 4, 0, 0.0, 0.0);
  // Three overhead charges (request send, broker service, response recv)
  // plus two wire latencies.
  EXPECT_GE(t, 3 * m_.net.two_sided_overhead_s);
}

TEST_F(TwoSidedTest, NegativePollRejected) {
  NetworkModel net(m_, 4);
  EXPECT_THROW(net.two_sided_fetch_time(0, 1, 10, 0.0, -1e-3),
               InternalError);
}

TEST_F(TwoSidedTest, OverheadScaleDiscountsRmaSoftwareCost) {
  NetworkModel net(m_, 8);
  const double full = net.rma_get_time(0, 4, 100, 0.0, 1.0);
  NetworkModel net2(m_, 8);
  const double amortized = net2.rma_get_time(0, 4, 100, 0.0, 0.6);
  EXPECT_NEAR(full - amortized, 0.4 * m_.net.rma_remote_overhead_s, 1e-12);
}

TEST_F(TwoSidedTest, OverheadScaleAppliesIntraNodeToo) {
  NetworkModel net(m_, 8);
  const double full = net.rma_get_time(0, 1, 100, 0.0, 1.0);
  NetworkModel net2(m_, 8);
  const double amortized = net2.rma_get_time(0, 1, 100, 0.0, 0.5);
  EXPECT_NEAR(full - amortized, 0.5 * m_.net.rma_intra_overhead_s, 1e-12);
}

}  // namespace
}  // namespace dds::model
