#include "model/network.hpp"

#include <gtest/gtest.h>

namespace dds::model {
namespace {

class NetworkModelTest : public ::testing::Test {
 protected:
  MachineConfig m_ = test_machine();  // 4 GPUs/node, round constants
};

TEST_F(NetworkModelTest, LocalGetHasNoNetworkCost) {
  NetworkModel net(m_, 8);
  const double t = net.local_get_time(12'000, 0.0);
  EXPECT_DOUBLE_EQ(
      t, m_.net.rma_local_overhead_s + 12'000 / m_.cpu.memcpy_bandwidth_Bps);
}

TEST_F(NetworkModelTest, SelfGetEqualsLocalGet) {
  NetworkModel net(m_, 8);
  EXPECT_DOUBLE_EQ(net.rma_get_time(3, 3, 1000, 1.0),
                   net.local_get_time(1000, 1.0));
}

TEST_F(NetworkModelTest, InterNodeGetIncludesOverheadLatencyBandwidth) {
  NetworkModel net(m_, 8);
  // Ranks 0 and 4 are on different nodes (4 GPUs/node).
  const double t = net.rma_get_time(0, 4, 10'000, 0.0);
  const double expected = m_.net.rma_remote_overhead_s +
                          m_.net.inter_latency_s +
                          10'000 / m_.net.inter_bandwidth_Bps;
  EXPECT_DOUBLE_EQ(t, expected);
}

TEST_F(NetworkModelTest, IntraNodeGetIsCheaperThanInterNode) {
  NetworkModel net(m_, 8);
  const double intra = net.rma_get_time(0, 1, 100'000, 0.0);
  NetworkModel net2(m_, 8);
  const double inter = net2.rma_get_time(0, 4, 100'000, 0.0);
  EXPECT_LT(intra, inter);
}

TEST_F(NetworkModelTest, TargetNicSerializesConcurrentGets) {
  NetworkModel net(m_, 12);
  // Two different origins pull 1 MB from the same remote node at t=0;
  // the second transfer queues behind the first at the target NIC.
  const std::uint64_t bytes = 1'000'000;
  const double t1 = net.rma_get_time(0, 8, bytes, 0.0);
  const double t2 = net.rma_get_time(4, 8, bytes, 0.0);
  const double wire = static_cast<double>(bytes) / m_.net.inter_bandwidth_Bps;
  EXPECT_NEAR(t2 - t1, wire, 1e-12);
}

TEST_F(NetworkModelTest, DistinctTargetsDoNotContend) {
  NetworkModel net(m_, 12);
  const std::uint64_t bytes = 1'000'000;
  const double t1 = net.rma_get_time(0, 4, bytes, 0.0);
  const double t2 = net.rma_get_time(0, 8, bytes, 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);  // separate NICs, same parameters
}

TEST_F(NetworkModelTest, MessageTimeSelfIsFree) {
  NetworkModel net(m_, 4);
  EXPECT_DOUBLE_EQ(net.message_time(2, 2, 1 << 20, 7.0), 7.0);
}

TEST_F(NetworkModelTest, CollectiveTimeGrowsLogarithmically) {
  NetworkModel net(m_, 1024);
  const double t2 = net.collective_time(2, 0, 0.0);
  const double t4 = net.collective_time(4, 0, 0.0);
  const double t1024 = net.collective_time(1024, 0, 0.0);
  EXPECT_NEAR(t4, 2.0 * t2, 1e-12);
  EXPECT_NEAR(t1024, 10.0 * t2, 1e-12);
  EXPECT_DOUBLE_EQ(net.collective_time(1, 0, 3.0), 3.0);
}

TEST_F(NetworkModelTest, CollectiveStartsAtMaxArrival) {
  NetworkModel net(m_, 8);
  const double t = net.collective_time(8, 0, 42.0);
  EXPECT_GT(t, 42.0);
}

TEST_F(NetworkModelTest, AllreduceScalesWithModelSize) {
  NetworkModel net(m_, 64);
  const double small = net.allreduce_time(64, 1'000'000, 0.0);
  const double large = net.allreduce_time(64, 10'000'000, 0.0);
  EXPECT_GT(large, small);
  EXPECT_DOUBLE_EQ(net.allreduce_time(1, 1'000'000, 5.0), 5.0);
}

TEST_F(NetworkModelTest, ResetClearsContention) {
  NetworkModel net(m_, 8);
  net.rma_get_time(0, 4, 10'000'000, 0.0);
  const double busy = net.rma_get_time(0, 4, 1000, 0.0);
  net.reset();
  const double fresh = net.rma_get_time(0, 4, 1000, 0.0);
  EXPECT_LT(fresh, busy);
}

TEST(MachineConfig, NodeMapping) {
  const auto m = summit();
  EXPECT_EQ(m.gpus_per_node, 6);
  EXPECT_EQ(m.node_of_rank(0), 0);
  EXPECT_EQ(m.node_of_rank(5), 0);
  EXPECT_EQ(m.node_of_rank(6), 1);
  EXPECT_EQ(m.nodes_for_ranks(1), 1);
  EXPECT_EQ(m.nodes_for_ranks(6), 1);
  EXPECT_EQ(m.nodes_for_ranks(7), 2);
  EXPECT_EQ(m.nodes_for_ranks(1536), 256);
}

TEST(MachineConfig, PresetsMatchPaperTestbeds) {
  const auto s = summit();
  const auto p = perlmutter();
  EXPECT_EQ(s.gpus_per_node, 6);   // 6x V100 per Summit node
  EXPECT_EQ(p.gpus_per_node, 4);   // 4x A100 per Perlmutter node
  EXPECT_EQ(s.node_memory_bytes, 512 * GiB);
  EXPECT_EQ(p.node_memory_bytes, 256 * GiB);
  EXPECT_LT(s.gpu.speed_factor, p.gpu.speed_factor);  // V100 < A100
}

}  // namespace
}  // namespace dds::model
