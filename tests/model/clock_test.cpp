#include "model/clock.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dds::model {
namespace {

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(1.5);
  c.advance(0.5);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(VirtualClock, AdvanceToNeverMovesBackwards) {
  VirtualClock c;
  c.advance(10.0);
  c.advance_to(5.0);
  EXPECT_DOUBLE_EQ(c.now(), 10.0);
  c.advance_to(12.0);
  EXPECT_DOUBLE_EQ(c.now(), 12.0);
}

TEST(VirtualClock, NegativeAdvanceThrows) {
  VirtualClock c;
  EXPECT_THROW(c.advance(-0.1), InternalError);
}

TEST(BusyResource, IdleResourceStartsImmediately) {
  BusyResource r;
  EXPECT_DOUBLE_EQ(r.acquire(2.0, 1e-4), 2.0 + 1e-4);
}

TEST(BusyResource, SameBucketRequestsSerialize) {
  BusyResource r;  // default 0.5 ms buckets
  // Three 100 us ops ready at the same virtual instant queue behind each
  // other regardless of call order semantics (same bucket).
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 100e-6), 100e-6);
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 100e-6), 200e-6);
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 100e-6), 300e-6);
}

TEST(BusyResource, DistantBucketsDoNotInteract) {
  BusyResource r;
  r.acquire(0.0, 400e-6);
  // Ready 100 ms later: the earlier work has long drained.
  EXPECT_DOUBLE_EQ(r.acquire(0.1, 50e-6), 0.1 + 50e-6);
}

TEST(BusyResource, OrderInsensitiveAcrossCallOrder) {
  // A request issued *later in wall-clock order* but *earlier in virtual
  // time* must not be charged for work deposited at later virtual times —
  // the property the old single-busy-until model violated.
  BusyResource r;
  for (int i = 0; i < 100; ++i) r.acquire(0.5, 100e-6);  // future burst
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 100e-6), 100e-6);      // past stays idle
}

TEST(BusyResource, BacklogSpillsIntoFollowingBuckets) {
  BusyResource r;  // 0.5 ms buckets
  // 2.5 ms of work dumped into bucket 0 overflows ~2 ms into later buckets;
  // a request in the next bucket inherits that backlog via carry.
  for (int i = 0; i < 25; ++i) r.acquire(0.0, 100e-6);
  const double t = r.acquire(0.6e-3, 100e-6);
  EXPECT_GT(t, 0.6e-3 + 100e-6 + 1e-3);  // sees multi-ms backlog
}

TEST(BusyResource, AggregateWorkConserved) {
  BusyResource r;
  double last = 0.0;
  for (int i = 0; i < 100; ++i) last = std::max(last, r.acquire(0.0, 50e-6));
  // All ops share bucket 0: the last completes after the full 5 ms of work.
  EXPECT_DOUBLE_EQ(last, 100 * 50e-6);
  EXPECT_DOUBLE_EQ(r.total_work(), 100 * 50e-6);
}

TEST(BusyResource, ConcurrentAcquiresConserveWork) {
  BusyResource r;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 1000;
  constexpr double kDur = 10e-6;
  std::vector<std::thread> threads;
  double max_completion[kThreads] = {};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        max_completion[t] =
            std::max(max_completion[t], r.acquire(0.0, kDur));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(r.total_work(), kThreads * kOpsPerThread * kDur, 1e-9);
  double last = 0;
  for (const double v : max_completion) last = std::max(last, v);
  EXPECT_NEAR(last, kThreads * kOpsPerThread * kDur, 1e-9);
}

TEST(BusyResource, ResetClearsState) {
  BusyResource r;
  r.acquire(0.0, 400e-6);
  r.reset();
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 100e-6), 100e-6);
  EXPECT_DOUBLE_EQ(r.total_work(), 100e-6);
}

TEST(BusyResource, LongOperationSpreadsAcrossBuckets) {
  BusyResource r;
  // A 2 ms operation occupies four 0.5 ms buckets; a later request inside
  // that span queues behind the spread occupancy.
  r.acquire(0.0, 2e-3);
  const double t = r.acquire(1.1e-3, 100e-6);
  EXPECT_GT(t, 1.1e-3 + 100e-6);
}

}  // namespace
}  // namespace dds::model
