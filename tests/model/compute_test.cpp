#include "model/compute.hpp"

#include <gtest/gtest.h>

namespace dds::model {
namespace {

TEST(ComputeModel, ForwardBackwardScalesWithBatchShape) {
  const ComputeModel cm(perlmutter());
  const BatchShape small{128, 128 * 10, 128 * 20, 1};
  const BatchShape large{128, 128 * 60, 128 * 120, 1};
  EXPECT_GT(cm.forward_backward_time(large), cm.forward_backward_time(small));
}

TEST(ComputeModel, V100SlowerThanA100) {
  const ComputeModel v100(summit());
  const ComputeModel a100(perlmutter());
  const BatchShape b{128, 6600, 13400, 100};
  EXPECT_GT(v100.forward_backward_time(b), a100.forward_backward_time(b));
}

TEST(ComputeModel, EmptyBatchStillPaysKernelOverhead) {
  const ComputeModel cm(perlmutter());
  const BatchShape empty{0, 0, 0, 0};
  EXPECT_GE(cm.forward_backward_time(empty),
            perlmutter().gpu.kernel_overhead_s);
}

TEST(ComputeModel, BatchingTimeScalesWithPayload) {
  const ComputeModel cm(perlmutter());
  const BatchShape b{128, 6600, 13400, 1};
  EXPECT_GT(cm.batching_time(b, 100 * MiB), cm.batching_time(b, 1 * MiB));
}

TEST(ComputeModel, OptimizerTimeScalesWithParams) {
  const ComputeModel cm(perlmutter());
  EXPECT_GT(cm.optimizer_time(100 * MiB), cm.optimizer_time(1 * MiB));
}

TEST(HydraGnnParams, CountIsPlausibleAndMonotone) {
  // 6 PNA layers with hidden 200 and a 13*200-wide update MLP dominate:
  // roughly 6 * (2600*200 + 200*200) ~ 3.4M parameters.
  const auto p1 = hydragnn_param_count(1, 1);
  EXPECT_GT(p1, 3'000'000u);
  EXPECT_LT(p1, 5'000'000u);
  // A 37,500-neuron head (AISD-Ex smooth) adds ~200*37500 = 7.5M params.
  const auto p_smooth = hydragnn_param_count(1, 37'500);
  EXPECT_GT(p_smooth, p1 + 7'000'000u);
  EXPECT_GT(hydragnn_param_count(100, 1), p1);
  EXPECT_EQ(hydragnn_param_bytes(1, 1), p1 * 4);
}

}  // namespace
}  // namespace dds::model
