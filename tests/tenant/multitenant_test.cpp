// Cross-tenant isolation and QoS, end to end through the MultiTenantDriver.
//
// The load-bearing claims:
//   * served bytes are a pure function of the tenant's own sampler — a
//     tenant sharing the store (and its cache) with N-1 others is served
//     the exact same payload bytes as running solo, on both execution
//     engines;
//   * real-GNN loss curves are bit-identical between a solo run and the
//     same trainer interleaved with another tenant under the arbiter —
//     interleaving changes execution order, never math;
//   * per-tenant labeled counters partition the global counters when all
//     traffic flows through tenants;
//   * one greedy tenant cannot starve another: the victim's wait is capped
//     by the starvation bound and its p99 fetch latency stays within a
//     small factor of its solo p99.
#include "tenant/driver.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "core/ddstore.hpp"
#include "datagen/dataset.hpp"
#include "formats/cff.hpp"
#include "simmpi/runtime.hpp"

namespace dds::tenant {
namespace {

using model::test_machine;

constexpr std::uint64_t kSamples = 256;
constexpr int kRanks = 4;

struct MultiTenantTest : public ::testing::Test {
  MultiTenantTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/4),
        ds_(datagen::make_dataset(datagen::DatasetKind::AisdHomoLumo, kSamples,
                                  11)) {
    formats::CffWriter::stage(fs_, "cff/ds", *ds_, 2);
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  formats::CffReader cff_reader() {
    return formats::CffReader(fs_, "cff/ds",
                              ds_->spec().nominal_cff_sample_bytes());
  }

  core::DDStoreConfig store_config() {
    core::DDStoreConfig cfg;
    cfg.width = 2;
    cfg.cache_capacity_bytes = 64 * 1024;  // small: tenants compete
    return cfg;
  }

  /// Four tenants with distinct seeds/batches; [0] mounts the first half,
  /// the rest share the full store.
  std::vector<TenantSpec> four_tenants() {
    std::vector<TenantSpec> specs(4);
    specs[0].name = "half";
    specs[0].mount_samples = kSamples / 2;
    specs[0].local_batch = 4;
    specs[0].seed = 21;
    specs[1].name = "full-a";
    specs[1].local_batch = 8;
    specs[1].seed = 22;
    specs[2].name = "full-b";
    specs[2].local_batch = 8;
    specs[2].seed = 23;
    specs[2].weight = 2.0;
    specs[3].name = "small";
    specs[3].local_batch = 2;
    specs[3].seed = 24;
    return specs;
  }

  /// Runs `epochs` driver epochs over the given tenants and returns the
  /// last epoch's reports (rank-identical, so rank 0's copy suffices).
  std::vector<TenantEpochReport> run_driver(
      const std::vector<TenantSpec>& specs, std::uint64_t epochs,
      std::optional<simmpi::Engine> engine = std::nullopt,
      QosPolicy policy = {}) {
    simmpi::Runtime rt(kRanks, machine_, /*seed=*/42, /*deterministic=*/true,
                       engine);
    const auto reader = cff_reader();
    std::vector<TenantEpochReport> out;
    std::mutex mu;
    rt.run([&](simmpi::Comm& c) {
      auto client = client_for(c);
      core::DDStore store(c, reader, client, store_config());
      TenantRegistry reg(store);
      for (const auto& s : specs) reg.admit(s);
      DriverConfig dcfg;
      dcfg.policy = policy;
      MultiTenantDriver driver(c, reg, machine_, dcfg);
      std::vector<TenantEpochReport> last;
      for (std::uint64_t e = 0; e < epochs; ++e) last = driver.run_epoch(e);
      if (c.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        out = last;
      }
    });
    return out;
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
};

TEST_F(MultiTenantTest, ServedBytesMatchSoloRunOnBothEngines) {
  const auto specs = four_tenants();
  for (const auto engine : {simmpi::Engine::Fibers, simmpi::Engine::Threads}) {
    const auto shared = run_driver(specs, 2, engine);
    ASSERT_EQ(shared.size(), specs.size());
    for (std::size_t k = 0; k < specs.size(); ++k) {
      // Same tenant, alone on a fresh store: the shuffle (hence the unique
      // id multiset per batch, hence the served bytes) must be identical —
      // cache sharing changes *where* bytes come from, never *which*.
      const auto solo = run_driver({specs[k]}, 2, engine);
      ASSERT_EQ(solo.size(), 1u);
      EXPECT_EQ(shared[k].served_bytes, solo[0].served_bytes)
          << "tenant " << specs[k].name;
      EXPECT_EQ(shared[k].global_samples, solo[0].global_samples);
      EXPECT_GT(shared[k].served_bytes, 0u);
    }
  }
}

TEST_F(MultiTenantTest, LabeledCountersPartitionGlobalTraffic) {
  const auto specs = four_tenants();
  simmpi::Runtime rt(kRanks, machine_, 42, true);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    core::DDStore store(c, reader, client, store_config());
    TenantRegistry reg(store);
    for (const auto& s : specs) reg.admit(s);
    MultiTenantDriver driver(c, reg, machine_);
    (void)driver.run_epoch(0);
    // All loads went through tenants, so the labeled families must sum to
    // exactly the global counters (this rank's view).
    const auto& m = store.metrics();
    for (const std::string family :
         {"bytes_fetched", "cache_hits", "cache_misses", "cache_hit_bytes",
          "local_gets", "remote_gets", "lock_epochs"}) {
      const auto members = m.family_values(family);
      std::uint64_t labeled = 0;
      std::uint64_t global = 0;
      for (const auto& [label, value] : members) {
        (label.empty() ? global : labeled) += value;
      }
      EXPECT_EQ(labeled, global) << family;
    }
  });
}

TEST_F(MultiTenantTest, RealLossCurvesBitIdenticalSoloVsInterleaved) {
  const auto reader = cff_reader();
  train::RealTrainerConfig base;
  base.gnn.input_dim = 6;  // AISD feature width
  base.gnn.hidden = 4;
  base.gnn.pna_layers = 1;
  base.gnn.fc_layers = 1;
  base.gnn.output_dim = 1;
  base.local_batch = 4;
  base.optimizer.lr = 3e-3;
  constexpr std::uint64_t kEpochs = 2;

  TenantSpec alice;
  alice.name = "alice";
  alice.mount_samples = kSamples / 2;
  alice.seed = 31;
  TenantSpec bob;
  bob.name = "bob";
  bob.mount_first = kSamples / 2;
  bob.mount_samples = kSamples / 2;
  bob.seed = 32;
  bob.weight = 3.0;

  for (const auto engine : {simmpi::Engine::Fibers, simmpi::Engine::Threads}) {
    // Solo runs: each tenant alone on a fresh store, plain run_epoch.
    std::vector<std::vector<double>> solo_losses(2);
    for (int which = 0; which < 2; ++which) {
      simmpi::Runtime rt(kRanks, machine_, 42, true, engine);
      std::mutex mu;
      rt.run([&](simmpi::Comm& c) {
        auto client = client_for(c);
        core::DDStore store(c, reader, client, store_config());
        TenantRegistry reg(store);
        TenantContext& t = reg.admit(which == 0 ? alice : bob);
        train::RealTrainerConfig cfg = base;
        cfg.seed = t.spec().seed;
        train::RealTrainer trainer(c, t.backend(), cfg);
        std::vector<double> losses;
        for (std::uint64_t e = 0; e < kEpochs; ++e) {
          const auto r = trainer.run_epoch(e);
          losses.push_back(r.train_loss);
          losses.push_back(r.val_loss);
        }
        if (c.rank() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          solo_losses[static_cast<std::size_t>(which)] = losses;
        }
      });
    }

    // Interleaved: both tenants share one store; the driver's arbiter
    // (with bob weighted 3x) interleaves their steps.
    std::vector<std::vector<double>> shared_losses(2);
    {
      simmpi::Runtime rt(kRanks, machine_, 42, true, engine);
      std::mutex mu;
      rt.run([&](simmpi::Comm& c) {
        auto client = client_for(c);
        core::DDStore store(c, reader, client, store_config());
        TenantRegistry reg(store);
        TenantContext& ta = reg.admit(alice);
        TenantContext& tb = reg.admit(bob);
        train::RealTrainerConfig ca = base;
        ca.seed = ta.spec().seed;
        train::RealTrainerConfig cb = base;
        cb.seed = tb.spec().seed;
        train::RealTrainer tra(c, ta.backend(), ca);
        train::RealTrainer trb(c, tb.backend(), cb);
        MultiTenantDriver driver(c, reg, machine_);
        std::vector<std::vector<double>> losses(2);
        for (std::uint64_t e = 0; e < kEpochs; ++e) {
          const auto results = driver.run_real_epoch(e, {&tra, &trb});
          for (int k = 0; k < 2; ++k) {
            losses[static_cast<std::size_t>(k)].push_back(
                results[static_cast<std::size_t>(k)].train_loss);
            losses[static_cast<std::size_t>(k)].push_back(
                results[static_cast<std::size_t>(k)].val_loss);
          }
        }
        if (c.rank() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          shared_losses = losses;
        }
      });
    }

    // Bit-identical, not approximately equal.
    EXPECT_EQ(solo_losses[0], shared_losses[0]) << "alice";
    EXPECT_EQ(solo_losses[1], shared_losses[1]) << "bob";
  }
}

TEST_F(MultiTenantTest, GreedyTenantCannotStarveVictim) {
  QosPolicy policy;
  policy.starvation_bound = 8;
  policy.max_burst = 4;

  TenantSpec greedy;
  greedy.name = "greedy";
  greedy.local_batch = 16;
  greedy.seed = 41;
  greedy.weight = 100.0;
  TenantSpec victim;
  victim.name = "victim";
  victim.local_batch = 4;
  victim.seed = 42;
  victim.weight = 1.0;

  const auto solo = run_driver({victim}, 2, std::nullopt, policy);
  const auto shared = run_driver({greedy, victim}, 2, std::nullopt, policy);
  ASSERT_EQ(shared.size(), 2u);

  // The victim made progress, its wait never exceeded the bound, and its
  // p99 fetch latency stayed within a small factor of the solo run's.
  EXPECT_GT(shared[1].global_samples, 0u);
  EXPECT_LE(shared[1].max_wait_grants, policy.starvation_bound);
  EXPECT_GT(solo[0].p99_fetch_s, 0.0);
  EXPECT_LE(shared[1].p99_fetch_s, 3.0 * solo[0].p99_fetch_s)
      << "victim p99 " << shared[1].p99_fetch_s << " vs solo "
      << solo[0].p99_fetch_s;
  // Both tenants complete their epochs — weight shapes the interleaving
  // order (covered by the arbiter unit tests), never total progress.
  EXPECT_GT(shared[0].global_samples, 0u);
}

}  // namespace
}  // namespace dds::tenant
