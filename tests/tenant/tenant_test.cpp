// Tenant layer unit tests: admission control, labeled metric registration,
// mounted-backend id translation and per-tenant attribution, and the
// QosArbiter's fairness properties (weight proportionality, starvation
// bound, burst cap, determinism).
#include "tenant/tenant.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/ddstore.hpp"
#include "datagen/dataset.hpp"
#include "formats/cff.hpp"
#include "simmpi/runtime.hpp"
#include "tenant/arbiter.hpp"

namespace dds::tenant {
namespace {

using model::test_machine;

constexpr std::uint64_t kSamples = 64;

// ---- QosArbiter -----------------------------------------------------------

TEST(QosArbiter, WeightedGrantsConvergeToWeightRatio) {
  QosPolicy policy;
  policy.starvation_bound = 1000;  // let the stride schedule run pure
  QosArbiter arb(policy);
  const int a = arb.add_tenant(3.0, 100);
  const int b = arb.add_tenant(1.0, 100);
  arb.set_runnable(a, true);
  arb.set_runnable(b, true);
  for (int i = 0; i < 4000; ++i) arb.next();
  // Equal step costs, weights 3:1 -> grants 3:1 (within stride rounding).
  EXPECT_NEAR(static_cast<double>(arb.grants(a)) /
                  static_cast<double>(arb.grants(b)),
              3.0, 0.05);
}

TEST(QosArbiter, ServiceProportionalityAccountsForStepCost) {
  // Tenant a demands 4x the bytes per step at equal weight: it should get
  // ~1/4 the grants, equalizing cost x grants (the stride invariant).
  QosPolicy policy;
  policy.starvation_bound = 1000;
  QosArbiter arb(policy);
  const int a = arb.add_tenant(1.0, 400);
  const int b = arb.add_tenant(1.0, 100);
  arb.set_runnable(a, true);
  arb.set_runnable(b, true);
  for (int i = 0; i < 5000; ++i) arb.next();
  const double cost_a = static_cast<double>(arb.grants(a)) * 400.0;
  const double cost_b = static_cast<double>(arb.grants(b)) * 100.0;
  EXPECT_NEAR(cost_a / cost_b, 1.0, 0.05);
}

TEST(QosArbiter, StarvationBoundCapsWaitEvenUnderExtremeWeights) {
  QosPolicy policy;
  policy.starvation_bound = 8;
  QosArbiter arb(policy);
  const int greedy = arb.add_tenant(1000.0, 100);
  const int victim = arb.add_tenant(1.0, 100);
  arb.set_runnable(greedy, true);
  arb.set_runnable(victim, true);
  for (int i = 0; i < 2000; ++i) arb.next();
  EXPECT_GT(arb.grants(victim), 0u);
  EXPECT_LE(arb.max_wait(victim), policy.starvation_bound);
}

TEST(QosArbiter, BurstCapBoundsConsecutiveGrants) {
  QosPolicy policy;
  policy.max_burst = 4;
  policy.starvation_bound = 100;
  QosArbiter arb(policy);
  const int heavy = arb.add_tenant(1000.0, 100);
  const int light = arb.add_tenant(1.0, 100);
  arb.set_runnable(heavy, true);
  arb.set_runnable(light, true);
  int consecutive = 0;
  int worst = 0;
  for (int i = 0; i < 1000; ++i) {
    if (arb.next() == heavy) {
      worst = std::max(worst, ++consecutive);
    } else {
      consecutive = 0;
    }
  }
  EXPECT_LE(worst, policy.max_burst);
  (void)light;
}

TEST(QosArbiter, RoundRobinIgnoresWeights) {
  QosPolicy policy;
  policy.kind = QosPolicyKind::RoundRobin;
  QosArbiter arb(policy);
  const int a = arb.add_tenant(100.0, 100);
  const int b = arb.add_tenant(1.0, 100);
  arb.set_runnable(a, true);
  arb.set_runnable(b, true);
  for (int i = 0; i < 100; ++i) arb.next();
  EXPECT_EQ(arb.grants(a), arb.grants(b));
}

TEST(QosArbiter, GrantSequenceIsDeterministic) {
  // Two arbiters fed the identical call history produce the identical
  // grant sequence — the property rank-synchronized collectives rely on.
  const auto drive = [](QosArbiter& arb) {
    std::vector<int> grants;
    const int a = arb.add_tenant(2.0, 300);
    const int b = arb.add_tenant(1.0, 100);
    const int c = arb.add_tenant(5.0, 700);
    arb.set_runnable(a, true);
    arb.set_runnable(b, true);
    arb.set_runnable(c, true);
    for (int i = 0; i < 500; ++i) {
      grants.push_back(arb.next());
      if (i == 200) arb.set_runnable(b, false);
      if (i == 300) arb.set_runnable(b, true);
    }
    return grants;
  };
  QosArbiter x{QosPolicy{}};
  QosArbiter y{QosPolicy{}};
  EXPECT_EQ(drive(x), drive(y));
}

TEST(QosArbiter, RejoiningTenantGetsNoCatchUpBurst) {
  QosPolicy policy;
  policy.max_burst = 2;
  QosArbiter arb(policy);
  const int a = arb.add_tenant(1.0, 100);
  const int b = arb.add_tenant(1.0, 100);
  arb.set_runnable(a, true);
  arb.set_runnable(b, false);
  for (int i = 0; i < 100; ++i) arb.next();  // a runs alone, pass advances
  arb.set_runnable(b, true);                 // b joins at current pass
  int b_burst = 0;
  for (int i = 0; i < 10; ++i) {
    if (arb.next() == b) {
      ++b_burst;
    } else {
      break;
    }
  }
  EXPECT_LE(b_burst, policy.max_burst);
}

// ---- MetricsRegistry labels ----------------------------------------------

TEST(MetricLabels, EmptyLabelIsPassthrough) {
  MetricsRegistry reg;
  auto& plain = reg.counter("bytes_fetched");
  auto& via_label = reg.counter("bytes_fetched", MetricLabel{});
  EXPECT_EQ(&plain, &via_label);  // same entry, no decorated name
  EXPECT_EQ(reg.num_counters(), 1u);
}

TEST(MetricLabels, LabeledMembersAreOrdinaryEntries) {
  MetricsRegistry reg;
  reg.counter("bytes_fetched") += 7;
  reg.counter("bytes_fetched", MetricLabel{"tenant", "a"}) += 10;
  reg.counter("bytes_fetched", MetricLabel{"tenant", "b"}) += 20;
  EXPECT_EQ(reg.counter_value("bytes_fetched{tenant=a}"), 10u);
  const auto family = reg.family_values("bytes_fetched");
  ASSERT_EQ(family.size(), 3u);
  EXPECT_EQ(family[0].first, "");
  EXPECT_EQ(family[0].second, 7u);
  EXPECT_EQ(family[1].first, "tenant=a");
  EXPECT_EQ(family[2].first, "tenant=b");
  EXPECT_EQ(reg.family_total("bytes_fetched"), 37u);
  // Registration order exposes labeled members to generic snapshots.
  EXPECT_EQ(reg.counter_names().back(), "bytes_fetched{tenant=b}");
}

TEST(MetricLabels, FamilyScanDoesNotMatchPrefixFamilies) {
  MetricsRegistry reg;
  reg.counter("cache_hits", MetricLabel{"tenant", "a"}) += 1;
  reg.counter("cache_hits_extra") += 5;
  EXPECT_EQ(reg.family_total("cache_hits"), 1u);
  EXPECT_TRUE(reg.family_values("cache").empty());
}

// ---- Registry admission + attribution ------------------------------------

class TenantRegistryTest : public ::testing::Test {
 protected:
  TenantRegistryTest()
      : machine_(test_machine()),
        fs_(machine_.fs, /*nnodes=*/4),
        ds_(datagen::make_dataset(datagen::DatasetKind::AisdHomoLumo, kSamples,
                                  7)) {
    formats::CffWriter::stage(fs_, "cff/ds", *ds_, 2);
  }

  fs::FsClient client_for(simmpi::Comm& c) {
    return fs::FsClient(fs_, machine_.node_of_rank(c.world_rank()), c.clock(),
                        c.rng());
  }

  formats::CffReader cff_reader() {
    return formats::CffReader(fs_, "cff/ds",
                              ds_->spec().nominal_cff_sample_bytes());
  }

  model::MachineConfig machine_;
  fs::ParallelFileSystem fs_;
  std::unique_ptr<datagen::SyntheticDataset> ds_;
};

TEST_F(TenantRegistryTest, AdmissionValidatesSpecs) {
  simmpi::Runtime rt(2, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    core::DDStore store(c, reader, client, core::DDStoreConfig{});
    AdmissionConfig admission;
    admission.max_tenants = 2;
    admission.step_demand_budget_bytes =
        3 * 8 * store.nominal_sample_bytes();  // fits two 8-sample tenants
    TenantRegistry reg(store, admission);

    TenantSpec ok;
    ok.name = "alice";
    ok.local_batch = 8;
    EXPECT_NO_THROW(reg.admit(ok));
    // Whole-store mount resolved at admission.
    EXPECT_EQ(reg.at(0).spec().mount_samples, kSamples);

    TenantSpec dup = ok;
    EXPECT_THROW(reg.admit(dup), ConfigError);  // duplicate name

    TenantSpec unnamed;
    EXPECT_THROW(reg.admit(unnamed), ConfigError);

    TenantSpec out_of_bounds;
    out_of_bounds.name = "bob";
    out_of_bounds.mount_first = kSamples - 4;
    out_of_bounds.mount_samples = 8;
    EXPECT_THROW(reg.admit(out_of_bounds), ConfigError);

    TenantSpec bad_weight;
    bad_weight.name = "carol";
    bad_weight.weight = 0.0;
    EXPECT_THROW(reg.admit(bad_weight), ConfigError);

    TenantSpec over_budget;
    over_budget.name = "dave";
    over_budget.local_batch = 32;  // 8 + 32 > 24-sample budget
    EXPECT_THROW(reg.admit(over_budget), ConfigError);

    TenantSpec bob;
    bob.name = "bob";
    bob.mount_first = 16;
    bob.mount_samples = 32;
    bob.local_batch = 8;
    EXPECT_NO_THROW(reg.admit(bob));
    EXPECT_EQ(reg.size(), 2u);

    TenantSpec third;
    third.name = "erin";
    third.local_batch = 1;
    EXPECT_THROW(reg.admit(third), ConfigError);  // max_tenants
  });
}

TEST_F(TenantRegistryTest, MountedBackendTranslatesAndAttributes) {
  simmpi::Runtime rt(2, machine_);
  const auto reader = cff_reader();
  rt.run([&](simmpi::Comm& c) {
    auto client = client_for(c);
    core::DDStoreConfig cfg;
    cfg.cache_capacity_bytes = std::numeric_limits<std::uint64_t>::max();
    core::DDStore store(c, reader, client, cfg);
    TenantRegistry reg(store);
    TenantSpec spec;
    spec.name = "alice";
    spec.mount_first = 16;
    spec.mount_samples = 16;
    TenantContext& alice = reg.admit(spec);

    // Mounted id 0 is store id 16 — payloads must agree exactly.
    const auto via_tenant = alice.backend().load(0);
    EXPECT_EQ(via_tenant, ds_->make(16));

    // The load was charged to alice's labeled counters...
    const auto& m = store.metrics();
    const std::uint64_t alice_bytes =
        m.counter_value("bytes_fetched{tenant=alice}") +
        m.counter_value("cache_hit_bytes{tenant=alice}");
    EXPECT_GT(alice_bytes, 0u);
    // ...in addition to (not instead of) the global counters.
    EXPECT_EQ(m.counter_value("bytes_fetched") +
                  m.counter_value("cache_hit_bytes"),
              alice_bytes);
    // And the latency recorder saw exactly one sample.
    EXPECT_EQ(alice.latencies().count(), 1u);

    // Outside the scope, loads charge only the global counters.
    (void)store.get(0);
    EXPECT_GT(m.counter_value("bytes_fetched") +
                  m.counter_value("cache_hit_bytes"),
              m.counter_value("bytes_fetched{tenant=alice}") +
                  m.counter_value("cache_hit_bytes{tenant=alice}"));

    // Cache attribution: a repeat load is a hit charged to alice.
    (void)alice.backend().load(0);
    EXPECT_EQ(m.counter_value("cache_hits{tenant=alice}"), 1u);
    EXPECT_GT(m.counter_value("cache_hit_bytes{tenant=alice}"), 0u);

    // Out-of-mount ids are rejected.
    EXPECT_THROW(alice.backend().load(16), Error);
  });
}

}  // namespace
}  // namespace dds::tenant
