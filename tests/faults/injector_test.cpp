#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dds::faults {
namespace {

FaultConfig armed_config() {
  FaultConfig fc;
  fc.seed = 99;
  fc.rma_fail_prob = 0.2;
  fc.rma_corrupt_prob = 0.1;
  fc.fs_read_error_prob = 0.05;
  return fc;
}

TEST(FaultConfig, DefaultArmsNothing) {
  EXPECT_FALSE(FaultConfig{}.any());

  FaultConfig fail;
  fail.rma_fail_prob = 0.01;
  EXPECT_TRUE(fail.any());

  FaultConfig corrupt;
  corrupt.rma_corrupt_prob = 0.01;
  EXPECT_TRUE(corrupt.any());

  FaultConfig fs;
  fs.fs_read_error_prob = 0.01;
  EXPECT_TRUE(fs.any());

  FaultConfig straggler;
  straggler.straggler_rank = 2;
  EXPECT_TRUE(straggler.any());

  FaultConfig dead;
  dead.dead_rank = 0;
  EXPECT_TRUE(dead.any());
}

TEST(FaultInjector, RejectsInvalidConfig) {
  FaultConfig bad_prob;
  bad_prob.rma_fail_prob = 1.5;
  EXPECT_THROW(FaultInjector(bad_prob, 4), Error);

  FaultConfig bad_sum;
  bad_sum.rma_fail_prob = 0.7;
  bad_sum.rma_corrupt_prob = 0.7;
  EXPECT_THROW(FaultInjector(bad_sum, 4), Error);

  FaultConfig bad_rank;
  bad_rank.dead_rank = 4;
  EXPECT_THROW(FaultInjector(bad_rank, 4), Error);

  FaultConfig bad_factor;
  bad_factor.straggler_rank = 1;
  bad_factor.straggler_factor = 0.5;
  EXPECT_THROW(FaultInjector(bad_factor, 4), Error);
}

TEST(FaultInjector, SameSeedGivesIdenticalDecisionSequences) {
  FaultInjector a(armed_config(), 4);
  FaultInjector b(armed_config(), 4);
  for (int rank = 0; rank < 4; ++rank) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(a.rma_outcome(rank), b.rma_outcome(rank));
      ASSERT_EQ(a.fs_read_fails(rank), b.fs_read_fails(rank));
    }
  }
}

TEST(FaultInjector, RankStreamsAreIndependent) {
  // Rank 0's decision sequence must not depend on how often other ranks
  // draw — that is what makes fault counts scheduling-independent.
  FaultInjector lone(armed_config(), 4);
  FaultInjector busy(armed_config(), 4);
  for (int i = 0; i < 500; ++i) {
    for (int other = 1; other < 4; ++other) {
      (void)busy.rma_outcome(other);
      (void)busy.fs_read_fails(other);
    }
    ASSERT_EQ(lone.rma_outcome(0), busy.rma_outcome(0));
  }
}

TEST(FaultInjector, ExtremeProbabilitiesAreDeterministic) {
  FaultConfig always_fail;
  always_fail.rma_fail_prob = 1.0;
  FaultInjector fail(always_fail, 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fail.rma_outcome(0), GetOutcome::Fail);
  }

  FaultConfig always_corrupt;
  always_corrupt.rma_corrupt_prob = 1.0;
  FaultInjector corrupt(always_corrupt, 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(corrupt.rma_outcome(0), GetOutcome::Corrupt);
  }

  FaultInjector clean(FaultConfig{}, 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(clean.rma_outcome(0), GetOutcome::Ok);
    EXPECT_FALSE(clean.fs_read_fails(0));
  }
}

TEST(FaultInjector, CorruptByteStaysInRange) {
  FaultInjector inj(armed_config(), 2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(inj.corrupt_byte(0, 17), 17u);
    EXPECT_EQ(inj.corrupt_byte(1, 1), 0u);
  }
}

TEST(FaultInjector, StragglerScaleAppliesOnlyToStraggler) {
  FaultConfig fc;
  fc.straggler_rank = 2;
  fc.straggler_factor = 8.0;
  FaultInjector inj(fc, 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(inj.service_scale_of(r), r == 2 ? 8.0 : 1.0);
  }
}

TEST(FaultInjector, DeadRankRespectsDeathTime) {
  FaultConfig fc;
  fc.dead_rank = 1;
  fc.death_time_s = 5.0;
  FaultInjector inj(fc, 4);
  EXPECT_FALSE(inj.target_dead(1, 4.9));
  EXPECT_TRUE(inj.target_dead(1, 5.0));
  EXPECT_TRUE(inj.target_dead(1, 100.0));
  EXPECT_FALSE(inj.target_dead(0, 100.0));
  EXPECT_FALSE(inj.target_dead(3, 100.0));
}

}  // namespace
}  // namespace dds::faults
