// Chaos scenario engine units: normalized-time materialization, built-in
// catalog validity, and the InvariantChecker's verdicts (liveness bound,
// counter audits, bit-equal replay).
#include "faults/chaos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

namespace dds::faults {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

FaultConfig mixed_schedule() {
  FaultConfig fc;
  SlowdownPhase sp;
  sp.rank = 1;
  sp.factor = 10.0;
  sp.start_s = 1.5;
  sp.end_s = 3.0;
  fc.slowdowns.push_back(sp);
  LinkPhase lp;
  lp.target = 2;
  lp.loss_prob = 0.05;
  lp.jitter_mean_s = 200e-6;
  lp.start_s = 1.0;
  lp.end_s = 2.0;
  fc.links.push_back(lp);
  DeathPhase dp;
  dp.rank = 3;
  dp.at_s = 2.5;
  fc.deaths.push_back(dp);
  return fc;
}

TEST(Materialize, ScalesOnlyTheTimeAxis) {
  const double T = 0.125;
  const FaultConfig out = materialize(mixed_schedule(), T);

  ASSERT_EQ(out.slowdowns.size(), 1u);
  EXPECT_DOUBLE_EQ(out.slowdowns[0].start_s, 1.5 * T);
  EXPECT_DOUBLE_EQ(out.slowdowns[0].end_s, 3.0 * T);
  EXPECT_DOUBLE_EQ(out.slowdowns[0].factor, 10.0);  // not a time
  EXPECT_EQ(out.slowdowns[0].rank, 1);

  ASSERT_EQ(out.links.size(), 1u);
  EXPECT_DOUBLE_EQ(out.links[0].start_s, 1.0 * T);
  EXPECT_DOUBLE_EQ(out.links[0].end_s, 2.0 * T);
  EXPECT_DOUBLE_EQ(out.links[0].loss_prob, 0.05);         // probability
  EXPECT_DOUBLE_EQ(out.links[0].jitter_mean_s, 200e-6);   // already seconds

  ASSERT_EQ(out.deaths.size(), 1u);
  EXPECT_DOUBLE_EQ(out.deaths[0].at_s, 2.5 * T);
}

TEST(Materialize, OpenEndedWindowStaysOpenEnded) {
  FaultConfig fc;
  SlowdownPhase sp;
  sp.rank = 0;
  sp.start_s = 1.0;  // end_s defaults to +infinity
  fc.slowdowns.push_back(sp);
  const FaultConfig out = materialize(fc, 2.0e-3);
  EXPECT_EQ(out.slowdowns[0].end_s, kInf);
}

TEST(Materialize, SeedAndProbabilitiesPassThrough) {
  FaultConfig fc = mixed_schedule();
  fc.seed = 777;
  fc.rma_fail_prob = 0.25;
  const FaultConfig out = materialize(fc, 10.0);
  EXPECT_EQ(out.seed, 777u);
  EXPECT_DOUBLE_EQ(out.rma_fail_prob, 0.25);
}

TEST(BuiltinScenarios, CatalogIsValidForAnyWorldSize) {
  for (const int nranks : {2, 4, 8, 16}) {
    const auto catalog = builtin_scenarios(nranks);
    ASSERT_GE(catalog.size(), 5u) << "nranks " << nranks;
    std::set<std::string> names;
    for (const ChaosScenario& s : catalog) {
      SCOPED_TRACE(s.name + " @ " + std::to_string(nranks));
      EXPECT_FALSE(s.name.empty());
      EXPECT_TRUE(names.insert(s.name).second) << "duplicate name";
      EXPECT_GT(s.max_inflation, 1.0);
      EXPECT_FALSE(s.note.empty());
      for (const SlowdownPhase& p : s.faults.slowdowns) {
        EXPECT_GE(p.rank, 0);
        EXPECT_LT(p.rank, nranks);
        EXPECT_GT(p.factor, 1.0);
        EXPECT_LT(p.start_s, p.end_s);
      }
      for (const LinkPhase& p : s.faults.links) {
        EXPECT_LT(p.target, nranks);
        EXPECT_LT(p.start_s, p.end_s);
        if (!p.partition) {
          EXPECT_TRUE(p.loss_prob > 0.0 || p.jitter_mean_s > 0.0);
        }
      }
      for (const DeathPhase& p : s.faults.deaths) {
        EXPECT_GE(p.rank, 0);
        EXPECT_LT(p.rank, nranks);
        EXPECT_GT(p.at_s, 0.0);  // never dead before calibration
      }
    }
  }
}

TEST(BuiltinScenarios, BaselineArmsNothingAndDeathWantsElastic) {
  const auto catalog = builtin_scenarios(4);
  ASSERT_FALSE(catalog.empty());
  EXPECT_EQ(catalog.front().name, "baseline_no_faults");
  EXPECT_FALSE(catalog.front().faults.any());
  bool saw_elastic_death = false;
  for (const ChaosScenario& s : catalog) {
    if (s.name == "baseline_no_faults") continue;
    EXPECT_TRUE(s.faults.any()) << s.name;
    if (!s.faults.deaths.empty()) {
      // A scenario that kills a rank must mount the recovery driver, or
      // the run would stall on an open breaker with no rebuild.
      EXPECT_TRUE(s.wants_elastic) << s.name;
      saw_elastic_death = true;
    }
  }
  EXPECT_TRUE(saw_elastic_death);
}

TEST(InvariantChecker, CleanRunPasses) {
  InvariantChecker check(/*reference_epoch_s=*/1.0, /*max_inflation=*/4.0);
  for (int e = 0; e < 4; ++e) check.on_epoch(e, {1.2, true});
  check.on_counters({.hedged_fetches = 5, .hedge_wins = 5}, false);
  const double run[] = {1.2, 1.2, 1.2, 1.2};
  check.on_replay(run, run);
  EXPECT_TRUE(check.passed());
  EXPECT_TRUE(check.violations().empty());
}

TEST(InvariantChecker, FlagsIdentityAndLivenessViolations) {
  InvariantChecker check(1.0, 4.0);
  check.on_epoch(0, {1.0, /*samples_identical=*/false});
  check.on_epoch(1, {4.5, true});           // past the inflation bound
  check.on_epoch(2, {-1.0, true});          // non-positive
  check.on_epoch(3, {kInf, true});          // non-finite (hung epoch)
  EXPECT_FALSE(check.passed());
  EXPECT_EQ(check.violations().size(), 4u);
}

TEST(InvariantChecker, InflationBoundIsInclusive) {
  InvariantChecker check(1.0, 4.0);
  check.on_epoch(0, {4.0, true});  // exactly at the bound: allowed
  EXPECT_TRUE(check.passed());
}

TEST(InvariantChecker, AuditsCounterConsistency) {
  {
    InvariantChecker check(1.0, 4.0);
    check.on_counters({.hedged_fetches = 2, .hedge_wins = 3}, false);
    EXPECT_FALSE(check.passed());  // wins cannot exceed hedges
  }
  {
    InvariantChecker check(1.0, 4.0);
    check.on_counters({.hedge_mismatches = 1}, false);
    EXPECT_FALSE(check.passed());  // twins disagreed
  }
  {
    InvariantChecker check(1.0, 4.0);
    check.on_counters({.checksum_failures = 1}, false);
    EXPECT_FALSE(check.passed());  // corruption leaked without being armed
  }
  {
    InvariantChecker check(1.0, 4.0);
    check.on_counters({.degraded_reads = 7}, /*allows_degraded=*/false);
    EXPECT_FALSE(check.passed());
  }
  {
    InvariantChecker check(1.0, 4.0);
    check.on_counters({.degraded_reads = 7}, /*allows_degraded=*/true);
    EXPECT_TRUE(check.passed());  // scenario expected unreachable samples
  }
}

TEST(InvariantChecker, ReplayDemandsBitEquality) {
  const double run[] = {1.0, 2.0, 3.0};
  {
    InvariantChecker check(1.0, 4.0);
    check.on_replay(run, run);
    EXPECT_TRUE(check.passed());
  }
  {
    // One ULP off is still a violation: same seed must reproduce the exact
    // virtual timeline, not a close one.
    double replay[] = {1.0, 2.0, 3.0};
    replay[1] = std::nextafter(replay[1], 10.0);
    InvariantChecker check(1.0, 4.0);
    check.on_replay(run, replay);
    EXPECT_FALSE(check.passed());
  }
  {
    const double shorter[] = {1.0, 2.0};
    InvariantChecker check(1.0, 4.0);
    check.on_replay(run, shorter);
    EXPECT_FALSE(check.passed());
  }
}

}  // namespace
}  // namespace dds::faults
