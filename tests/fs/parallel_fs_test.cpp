#include "fs/parallel_fs.hpp"

#include <gtest/gtest.h>

#include "simmpi/runtime.hpp"

namespace dds::fs {
namespace {

using model::test_machine;

ByteBuffer make_bytes(std::size_t n, int seed = 0) {
  ByteBuffer b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::byte>((seed + 7 * i) & 0xff);
  }
  return b;
}

class FsTest : public ::testing::Test {
 protected:
  FsTest() : fs_(test_machine().fs, /*nnodes=*/2) {}
  ParallelFileSystem fs_;
  model::VirtualClock clock_;
  Rng rng_{1};
};

TEST_F(FsTest, WriteReadRoundTrip) {
  const auto data = make_bytes(1000, 3);
  fs_.write_file("a/b.bin", ByteSpan(data));
  EXPECT_TRUE(fs_.exists("a/b.bin"));
  EXPECT_EQ(fs_.file_size("a/b.bin"), 1000u);
  EXPECT_EQ(fs_.read_file_raw("a/b.bin"), data);

  FsClient client(fs_, 0, clock_, rng_);
  EXPECT_EQ(client.read_file("a/b.bin"), data);
  EXPECT_GT(clock_.now(), 0.0);
}

TEST_F(FsTest, MissingFileThrows) {
  FsClient client(fs_, 0, clock_, rng_);
  EXPECT_THROW(client.open("nope"), IoError);
  EXPECT_THROW(fs_.file_size("nope"), IoError);
  EXPECT_THROW(fs_.remove("nope"), IoError);
}

TEST_F(FsTest, ListFiltersByPrefixSorted) {
  fs_.write_file("ds/b", ByteSpan(make_bytes(1)));
  fs_.write_file("ds/a", ByteSpan(make_bytes(1)));
  fs_.write_file("other/x", ByteSpan(make_bytes(1)));
  const auto ls = fs_.list("ds/");
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_EQ(ls[0], "ds/a");
  EXPECT_EQ(ls[1], "ds/b");
  EXPECT_EQ(fs_.file_count(), 3u);
}

TEST_F(FsTest, NominalSizeDefaultsToActualAndValidates) {
  fs_.write_file("x", ByteSpan(make_bytes(100)));
  EXPECT_EQ(fs_.nominal_file_size("x"), 100u);
  fs_.write_file("y", ByteSpan(make_bytes(100)), 1'000'000);
  EXPECT_EQ(fs_.nominal_file_size("y"), 1'000'000u);
  EXPECT_THROW(fs_.write_file("z", ByteSpan(make_bytes(100)), 50),
               InternalError);
}

TEST_F(FsTest, PreadReturnsCorrectSlice) {
  const auto data = make_bytes(5000, 9);
  fs_.write_file("f", ByteSpan(data));
  FsClient client(fs_, 0, clock_, rng_);
  const auto ref = client.open("f");
  ByteBuffer dst(100);
  client.pread(ref, MutableByteSpan(dst), 1234);
  EXPECT_EQ(0, std::memcmp(dst.data(), data.data() + 1234, 100));
  EXPECT_THROW(client.pread(ref, MutableByteSpan(dst), 4950), IoError);
}

TEST_F(FsTest, OpenChargesMdsCost) {
  fs_.write_file("f", ByteSpan(make_bytes(10)));
  FsClient client(fs_, 0, clock_, rng_);
  client.open("f");
  const auto& p = test_machine().fs;
  // Deterministic (no jitter on the test machine).
  EXPECT_DOUBLE_EQ(clock_.now(), p.mds_occupancy_s + p.mds_service_s);
}

TEST_F(FsTest, RereadHitsPageCacheAndIsFaster) {
  fs_.write_file("f", ByteSpan(make_bytes(1000)));
  FsClient client(fs_, 0, clock_, rng_);
  const auto ref = client.open("f");
  ByteBuffer dst(1000);

  const double t0 = clock_.now();
  client.pread(ref, MutableByteSpan(dst), 0);
  const double miss_cost = clock_.now() - t0;

  const double t1 = clock_.now();
  client.pread(ref, MutableByteSpan(dst), 0);
  const double hit_cost = clock_.now() - t1;

  EXPECT_LT(hit_cost, miss_cost);
  EXPECT_EQ(client.stats().cache_hits, 1u);
  EXPECT_EQ(client.stats().cache_misses, 1u);
}

TEST_F(FsTest, CachesArePerNode) {
  fs_.write_file("f", ByteSpan(make_bytes(100)));
  FsClient c0(fs_, 0, clock_, rng_);
  model::VirtualClock clock1;
  FsClient c1(fs_, 1, clock1, rng_);
  ByteBuffer dst(100);
  c0.pread(c0.open("f"), MutableByteSpan(dst), 0);
  // Node 1 has its own cold cache.
  c1.pread(c1.open("f"), MutableByteSpan(dst), 0);
  EXPECT_EQ(c1.stats().cache_misses, 1u);
}

TEST_F(FsTest, RandomReadCostsMoreThanSequential) {
  fs_.write_file("f", ByteSpan(make_bytes(1000)));
  FsClient client(fs_, 0, clock_, rng_);
  const auto ref = client.open("f");
  ByteBuffer dst(1000);
  const double t0 = clock_.now();
  client.pread(ref, MutableByteSpan(dst), 0, /*sequential=*/true);
  const double seq = clock_.now() - t0;
  fs_.reset_time_state();
  const double t1 = clock_.now();
  client.pread(ref, MutableByteSpan(dst), 0, /*sequential=*/false);
  const double rnd = clock_.now() - t1;
  EXPECT_GT(rnd, seq);
}

TEST_F(FsTest, NominalScaleDrivesReadAmplification) {
  // 1 KB actual payload presented as 10 MB nominal: a full-file read must
  // pull nominal blocks (10 MB / 64 KiB = ~160 blocks) through the FS.
  fs_.write_file("big", ByteSpan(make_bytes(1000)), 10'000'000);
  FsClient client(fs_, 0, clock_, rng_);
  const auto ref = client.open("big");
  EXPECT_NEAR(ref.scale, 10'000.0, 1.0);
  ByteBuffer dst(1000);
  client.pread(ref, MutableByteSpan(dst), 0, /*sequential=*/true);
  EXPECT_GE(client.stats().nominal_bytes_read, 9'900'000u);
  EXPECT_GT(client.stats().cache_misses, 100u);
}

TEST_F(FsTest, SmallSampleInLargeContainerTouchesOneBlock) {
  // A CFF-style access: tiny actual range in a huge nominal container
  // should amplify to ~one block, not the whole file.
  fs_.write_file("container", ByteSpan(make_bytes(100'000)), 100'000'000);
  FsClient client(fs_, 0, clock_, rng_);
  const auto ref = client.open("container");
  ByteBuffer dst(10);  // maps to ~10 KB nominal, inside 64 KiB blocks
  client.pread(ref, MutableByteSpan(dst), 50'000);
  EXPECT_LE(client.stats().cache_misses, 2u);
  EXPECT_LE(client.stats().nominal_bytes_read, 2u * 64 * KiB);
}

TEST_F(FsTest, SharedBandwidthSerializesConcurrentMisses) {
  // Two clients pulling large reads at the same virtual time queue at the
  // aggregate-bandwidth resource: the second finishes later.
  fs_.write_file("f", ByteSpan(make_bytes(100)), 10'000'000);
  model::VirtualClock ca, cb;
  FsClient a(fs_, 0, ca, rng_);
  FsClient b(fs_, 1, cb, rng_);
  ByteBuffer dst(100);
  const auto ra = a.open("f");
  const auto rb = b.open("f");
  const double start_a = ca.now();
  a.pread(ra, MutableByteSpan(dst), 0, true);
  b.pread(rb, MutableByteSpan(dst), 0, true);
  const double dur_a = ca.now() - start_a;
  EXPECT_GT(cb.now(), ca.now() - dur_a * 0.5);  // b queued behind a
}

TEST_F(FsTest, ResetTimeStateClearsCaches) {
  fs_.write_file("f", ByteSpan(make_bytes(100)));
  FsClient client(fs_, 0, clock_, rng_);
  ByteBuffer dst(100);
  client.pread(client.open("f"), MutableByteSpan(dst), 0);
  fs_.reset_time_state();
  client.reset_stats();
  client.pread(client.open("f"), MutableByteSpan(dst), 0);
  EXPECT_EQ(client.stats().cache_misses, 1u);  // cold again
}

TEST_F(FsTest, UsableFromRankThreads) {
  // The FS is shared state accessed from simmpi rank threads.
  fs_.write_file("shared", ByteSpan(make_bytes(4096, 5)));
  simmpi::Runtime rt(8, test_machine());
  rt.run([&](simmpi::Comm& c) {
    FsClient client(fs_, test_machine().node_of_rank(c.world_rank()),
                    c.clock(), c.rng());
    const auto got = client.read_file("shared");
    EXPECT_EQ(got.size(), 4096u);
    EXPECT_EQ(got, make_bytes(4096, 5));
  });
}

TEST(FsParamsValidation, ConstructionRejectsNonPositiveRates) {
  // A zero bandwidth/latency yields infinite or NaN modeled times far from
  // the bad parameter; the filesystem must refuse loudly at construction.
  const auto expect_rejected = [](void (*break_one)(model::FsParams&)) {
    model::FsParams p = test_machine().fs;
    break_one(p);
    EXPECT_THROW(ParallelFileSystem(p, 1), ConfigError);
  };
  expect_rejected([](model::FsParams& p) { p.mds_service_s = 0.0; });
  expect_rejected([](model::FsParams& p) { p.mds_occupancy_s = -1e-6; });
  expect_rejected([](model::FsParams& p) { p.read_latency_s = 0.0; });
  expect_rejected([](model::FsParams& p) { p.aggregate_bandwidth_Bps = 0.0; });
  expect_rejected(
      [](model::FsParams& p) { p.aggregate_bandwidth_Bps = -12e9; });
  expect_rejected([](model::FsParams& p) { p.write_bandwidth_Bps = 0.0; });
  expect_rejected([](model::FsParams& p) { p.cache_hit_s = 0.0; });
  expect_rejected([](model::FsParams& p) { p.block_bytes = 0; });
  // The seek penalty may be exactly zero (sequential-only model), but
  // never negative.
  model::FsParams ok = test_machine().fs;
  ok.random_read_penalty_s = 0.0;
  EXPECT_NO_THROW(ParallelFileSystem(ok, 1));
  ok.random_read_penalty_s = -1e-6;
  EXPECT_THROW(ParallelFileSystem(ok, 1), ConfigError);
}

TEST_F(FsTest, StageReadAtIsDeferredDeterministicAndContended) {
  // The staging-queue read model: completion = issue latency + seek
  // penalty + nominal bytes over the shared aggregate bandwidth — computed
  // without a clock and without RNG jitter (byte-identity discipline).
  const model::FsParams& p = test_machine().fs;
  const std::uint64_t nominal = 1'000'000;
  const double d1 = fs_.stage_read_at(0.0, nominal);
  EXPECT_DOUBLE_EQ(d1, p.read_latency_s + p.random_read_penalty_s +
                           static_cast<double>(nominal) /
                               p.aggregate_bandwidth_Bps);
  // The bandwidth lane is shared: a second read issued at the same instant
  // queues behind the first.
  const double d2 = fs_.stage_read_at(0.0, nominal);
  EXPECT_GT(d2, d1);
  EXPECT_DOUBLE_EQ(clock_.now(), 0.0);  // nothing here touches a clock
}

}  // namespace
}  // namespace dds::fs
