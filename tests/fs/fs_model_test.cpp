// Filesystem cost-model properties: the behaviours the paper's evaluation
// depends on must *emerge* from the model, not be scripted — these tests
// pin them down at test-machine scale.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "fs/parallel_fs.hpp"
#include "simmpi/runtime.hpp"

namespace dds::fs {
namespace {

using model::test_machine;

ByteBuffer blob(std::size_t n) { return ByteBuffer(n, std::byte{0x5a}); }

/// Closed-loop PFF-style load: `nranks` clients each opening+reading small
/// files back to back for `ops` iterations; returns mean per-op latency.
double closed_loop_pff_latency(int nranks, int ops) {
  auto machine = test_machine();
  machine.fs.mds_occupancy_s = 100e-6;  // exaggerate for a visible knee
  ParallelFileSystem pfs(machine.fs, machine.nodes_for_ranks(nranks));
  for (int i = 0; i < 64; ++i) {
    pfs.write_file("f" + std::to_string(i), ByteSpan(blob(100)));
  }
  RunningStats lat;
  std::mutex m;
  simmpi::Runtime rt(nranks, machine);
  rt.run([&](simmpi::Comm& c) {
    FsClient client(pfs, machine.node_of_rank(c.world_rank()), c.clock(),
                    c.rng());
    RunningStats mine;
    for (int i = 0; i < ops; ++i) {
      // Keep clocks loosely aligned (the BusyResource skew contract).
      if (i % 8 == 0) c.barrier();
      const double t0 = c.clock().now();
      (void)client.read_file("f" + std::to_string((i * 7 + c.rank()) % 64));
      mine.add(c.clock().now() - t0);
    }
    const std::scoped_lock lock(m);
    lat.merge(mine);
  });
  return lat.mean();
}

TEST(FsModel, MetadataServerSaturatesWithClientCount) {
  const double few = closed_loop_pff_latency(2, 32);
  const double many = closed_loop_pff_latency(16, 32);
  // 16 clients x 100 us occupancy exceed the ~1.2 ms base cycle: queueing
  // must show up.
  EXPECT_GT(many, few * 1.2);
}

TEST(FsModel, JitterIsMeanPreserving) {
  auto machine = test_machine();
  machine.fs.jitter_sigma = 0.3;
  machine.fs.stall_prob = 0.0;
  ParallelFileSystem pfs(machine.fs, 1);
  pfs.write_file("f", ByteSpan(blob(10)));
  model::VirtualClock clock;
  Rng rng(3);
  FsClient client(pfs, 0, clock, rng);
  RunningStats opens;
  for (int i = 0; i < 4000; ++i) {
    const double t0 = clock.now();
    client.open("f");
    opens.add(clock.now() - t0);
  }
  // Log-normal factor has mean 1: mean open ~ occupancy + service.
  const double expect = machine.fs.mds_occupancy_s + machine.fs.mds_service_s;
  EXPECT_NEAR(opens.mean(), expect, 0.05 * expect);
  EXPECT_GT(opens.stddev(), 0.0);
}

TEST(FsModel, StallsProduceTail) {
  auto machine = test_machine();
  machine.fs.jitter_sigma = 0.0;
  machine.fs.stall_prob = 0.05;
  machine.fs.stall_factor = 10.0;
  ParallelFileSystem pfs(machine.fs, 1);
  pfs.write_file("f", ByteSpan(blob(10)));
  model::VirtualClock clock;
  Rng rng(4);
  FsClient client(pfs, 0, clock, rng);
  LatencyRecorder lat;
  for (int i = 0; i < 2000; ++i) {
    const double t0 = clock.now();
    client.open("f");
    lat.add(clock.now() - t0);
  }
  // ~5% of ops hit the 10x stall: p99 >> p50.
  EXPECT_GT(lat.percentile(99), 3.0 * lat.percentile(50));
}

TEST(FsModel, UncacheableReadsNeverHit) {
  const auto machine = test_machine();
  ParallelFileSystem pfs(machine.fs, 1);
  pfs.write_file("f", ByteSpan(blob(1000)));
  model::VirtualClock clock;
  Rng rng(5);
  FsClient client(pfs, 0, clock, rng);
  for (int i = 0; i < 5; ++i) (void)client.read_file("f");  // PFF path
  EXPECT_EQ(client.stats().cache_hits, 0u);
  EXPECT_EQ(client.stats().cache_misses, 5u);
}

TEST(FsModel, CacheHitSkipsRpcLatency) {
  const auto machine = test_machine();
  ParallelFileSystem pfs(machine.fs, 1);
  pfs.write_file("f", ByteSpan(blob(100)));
  model::VirtualClock clock;
  Rng rng(6);
  FsClient client(pfs, 0, clock, rng);
  const auto ref = client.open("f");
  ByteBuffer dst(100);
  client.pread(ref, MutableByteSpan(dst), 0);  // miss, fills cache
  const double t0 = clock.now();
  client.pread(ref, MutableByteSpan(dst), 0);  // hit
  const double hit_cost = clock.now() - t0;
  // A hit costs exactly cache_hit_s: no RPC latency, no bandwidth queueing.
  EXPECT_NEAR(hit_cost, machine.fs.cache_hit_s, 1e-9);
}

TEST(FsModel, AmplifiedContainerReadSlowerThanSmallObjectRead) {
  // A CFF-style random read (block amplification) must cost more than a
  // PFF-style whole-small-file read minus its metadata open.
  const auto machine = test_machine();
  ParallelFileSystem pfs(machine.fs, 1);
  pfs.write_file("small", ByteSpan(blob(200)), 8000);
  pfs.write_file("container", ByteSpan(blob(100'000)), 400'000'000);
  model::VirtualClock clock;
  Rng rng(7);
  FsClient client(pfs, 0, clock, rng);
  const auto small = client.open("small");
  const auto big = client.open("container");
  ByteBuffer dst(200);
  double t0 = clock.now();
  client.pread(small, MutableByteSpan(dst), 0, /*sequential=*/true,
               /*cacheable=*/false);
  const double pff_read = clock.now() - t0;
  t0 = clock.now();
  client.pread(big, MutableByteSpan(dst), 50'000, /*sequential=*/false);
  const double cff_read = clock.now() - t0;
  EXPECT_GT(cff_read, pff_read);
}

}  // namespace
}  // namespace dds::fs
