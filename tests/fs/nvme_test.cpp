#include "fs/nvme.hpp"

#include <gtest/gtest.h>

namespace dds::fs {
namespace {

NvmeParams small_params() {
  NvmeParams p;
  p.capacity_bytes = 10'000;
  p.read_latency_s = 100e-6;
  p.write_latency_s = 50e-6;
  p.read_bandwidth_Bps = 1e9;
  p.write_bandwidth_Bps = 0.5e9;
  return p;
}

TEST(NvmeTier, MissThenHit) {
  NvmeTier tier(small_params(), 2);
  model::VirtualClock clock;
  EXPECT_FALSE(tier.try_read(0, 7, 1000, clock));
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);  // miss costs nothing here
  tier.admit(0, 7, 1000, clock);
  EXPECT_GT(clock.now(), 0.0);  // write charged
  const double after_write = clock.now();
  EXPECT_TRUE(tier.try_read(0, 7, 1000, clock));
  EXPECT_GT(clock.now(), after_write);  // read charged
}

TEST(NvmeTier, NodesAreIndependent) {
  NvmeTier tier(small_params(), 2);
  model::VirtualClock clock;
  tier.try_read(0, 1, 100, clock);
  tier.admit(0, 1, 100, clock);
  EXPECT_FALSE(tier.try_read(1, 1, 100, clock));  // other node cold
  EXPECT_TRUE(tier.try_read(0, 1, 100, clock));
}

TEST(NvmeTier, CapacityEvictsLru) {
  NvmeTier tier(small_params(), 1);  // 10 KB device
  model::VirtualClock clock;
  for (std::uint64_t id = 0; id < 20; ++id) {
    tier.try_read(0, id, 1000, clock);  // admit-on-miss bookkeeping
  }
  // Only the last ~10 samples fit; early ones were evicted.
  EXPECT_FALSE(tier.try_read(0, 0, 1000, clock));
  EXPECT_TRUE(tier.try_read(0, 19, 1000, clock));
  EXPECT_LE(tier.used_bytes(0), 10'000u);
}

TEST(NvmeTier, ReadCostScalesWithNominalBytes) {
  auto params = small_params();
  params.capacity_bytes = 10'000'000;  // both samples must fit
  NvmeTier tier(params, 1);
  model::VirtualClock c1, c2;
  tier.try_read(0, 1, 1000, c1);
  tier.try_read(0, 2, 1'000'000, c2);
  tier.admit(0, 1, 1000, c1);
  tier.admit(0, 2, 1'000'000, c2);
  const double t1 = c1.now();
  const double t2 = c2.now();
  EXPECT_GT(t2, t1);  // bigger write
  const double r1_start = c1.now(), r2_start = c2.now();
  tier.try_read(0, 1, 1000, c1);
  tier.try_read(0, 2, 1'000'000, c2);
  EXPECT_GT(c2.now() - r2_start, c1.now() - r1_start);
}

TEST(NvmeTier, ResetClearsResidency) {
  NvmeTier tier(small_params(), 1);
  model::VirtualClock clock;
  tier.try_read(0, 5, 100, clock);
  tier.reset();
  EXPECT_FALSE(tier.try_read(0, 5, 100, clock));
  EXPECT_EQ(tier.used_bytes(0), 100u);  // re-admitted by the probe
}

TEST(NvmeTier, SharedLaneQueuesConcurrentReads) {
  // Two ranks of one node reading at the same virtual time serialize on
  // the device's read lane.
  auto params = small_params();
  params.capacity_bytes = 10'000'000;
  NvmeTier tier(params, 1);
  model::VirtualClock warm;
  tier.try_read(0, 1, 500'000, warm);
  tier.admit(0, 1, 500'000, warm);

  model::VirtualClock a, b;
  EXPECT_TRUE(tier.try_read(0, 1, 500'000, a));
  EXPECT_TRUE(tier.try_read(0, 1, 500'000, b));
  // 500 KB over 1 GB/s = 500 us service each; the second queues.
  EXPECT_NEAR(b.now() - a.now(), 500e-6, 50e-6);
}

TEST(NvmeParams, ConstructionRejectsNonPositiveRates) {
  // A zero bandwidth or latency silently produces infinite/NaN modeled
  // times; the tier must refuse loudly at construction instead.
  const auto expect_rejected = [](void (*break_one)(NvmeParams&)) {
    NvmeParams p = small_params();
    break_one(p);
    EXPECT_THROW(p.validate(), ConfigError);
    EXPECT_THROW(NvmeTier(p, 1), ConfigError);
  };
  expect_rejected([](NvmeParams& p) { p.capacity_bytes = 0; });
  expect_rejected([](NvmeParams& p) { p.read_latency_s = 0.0; });
  expect_rejected([](NvmeParams& p) { p.read_latency_s = -1e-6; });
  expect_rejected([](NvmeParams& p) { p.write_latency_s = 0.0; });
  expect_rejected([](NvmeParams& p) { p.read_bandwidth_Bps = 0.0; });
  expect_rejected([](NvmeParams& p) { p.read_bandwidth_Bps = -1e9; });
  expect_rejected([](NvmeParams& p) { p.write_bandwidth_Bps = 0.0; });
  EXPECT_NO_THROW(small_params().validate());
}

TEST(NvmeTier, DeferredReadsMatchClockDrivenPricing) {
  // One tier driven by a clock, a twin driven by the deferred *_at calls
  // from the same start times: identical residency decisions, identical
  // modeled completions — and the deferred path never touches a clock.
  NvmeTier clocked(small_params(), 1);
  NvmeTier deferred(small_params(), 1);
  model::VirtualClock clock;

  EXPECT_FALSE(clocked.try_read(0, 7, 1000, clock));
  EXPECT_FALSE(deferred.try_read_at(0, 7, 1000, 0.0).has_value());
  clocked.admit(0, 7, 1000, clock);
  const double staged = deferred.admit_at(0, 7, 1000, 0.0);
  EXPECT_GT(staged, 0.0);
  EXPECT_DOUBLE_EQ(staged, clock.now());

  const double start = clock.now();
  ASSERT_TRUE(clocked.try_read(0, 7, 1000, clock));
  const auto done = deferred.try_read_at(0, 7, 1000, start);
  ASSERT_TRUE(done.has_value());
  EXPECT_DOUBLE_EQ(*done, clock.now());
}

}  // namespace
}  // namespace dds::fs
