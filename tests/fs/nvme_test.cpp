#include "fs/nvme.hpp"

#include <gtest/gtest.h>

namespace dds::fs {
namespace {

NvmeParams small_params() {
  NvmeParams p;
  p.capacity_bytes = 10'000;
  p.read_latency_s = 100e-6;
  p.write_latency_s = 50e-6;
  p.read_bandwidth_Bps = 1e9;
  p.write_bandwidth_Bps = 0.5e9;
  return p;
}

TEST(NvmeTier, MissThenHit) {
  NvmeTier tier(small_params(), 2);
  model::VirtualClock clock;
  EXPECT_FALSE(tier.try_read(0, 7, 1000, clock));
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);  // miss costs nothing here
  tier.admit(0, 7, 1000, clock);
  EXPECT_GT(clock.now(), 0.0);  // write charged
  const double after_write = clock.now();
  EXPECT_TRUE(tier.try_read(0, 7, 1000, clock));
  EXPECT_GT(clock.now(), after_write);  // read charged
}

TEST(NvmeTier, NodesAreIndependent) {
  NvmeTier tier(small_params(), 2);
  model::VirtualClock clock;
  tier.try_read(0, 1, 100, clock);
  tier.admit(0, 1, 100, clock);
  EXPECT_FALSE(tier.try_read(1, 1, 100, clock));  // other node cold
  EXPECT_TRUE(tier.try_read(0, 1, 100, clock));
}

TEST(NvmeTier, CapacityEvictsLru) {
  NvmeTier tier(small_params(), 1);  // 10 KB device
  model::VirtualClock clock;
  for (std::uint64_t id = 0; id < 20; ++id) {
    tier.try_read(0, id, 1000, clock);  // admit-on-miss bookkeeping
  }
  // Only the last ~10 samples fit; early ones were evicted.
  EXPECT_FALSE(tier.try_read(0, 0, 1000, clock));
  EXPECT_TRUE(tier.try_read(0, 19, 1000, clock));
  EXPECT_LE(tier.used_bytes(0), 10'000u);
}

TEST(NvmeTier, ReadCostScalesWithNominalBytes) {
  auto params = small_params();
  params.capacity_bytes = 10'000'000;  // both samples must fit
  NvmeTier tier(params, 1);
  model::VirtualClock c1, c2;
  tier.try_read(0, 1, 1000, c1);
  tier.try_read(0, 2, 1'000'000, c2);
  tier.admit(0, 1, 1000, c1);
  tier.admit(0, 2, 1'000'000, c2);
  const double t1 = c1.now();
  const double t2 = c2.now();
  EXPECT_GT(t2, t1);  // bigger write
  const double r1_start = c1.now(), r2_start = c2.now();
  tier.try_read(0, 1, 1000, c1);
  tier.try_read(0, 2, 1'000'000, c2);
  EXPECT_GT(c2.now() - r2_start, c1.now() - r1_start);
}

TEST(NvmeTier, ResetClearsResidency) {
  NvmeTier tier(small_params(), 1);
  model::VirtualClock clock;
  tier.try_read(0, 5, 100, clock);
  tier.reset();
  EXPECT_FALSE(tier.try_read(0, 5, 100, clock));
  EXPECT_EQ(tier.used_bytes(0), 100u);  // re-admitted by the probe
}

TEST(NvmeTier, SharedLaneQueuesConcurrentReads) {
  // Two ranks of one node reading at the same virtual time serialize on
  // the device's read lane.
  auto params = small_params();
  params.capacity_bytes = 10'000'000;
  NvmeTier tier(params, 1);
  model::VirtualClock warm;
  tier.try_read(0, 1, 500'000, warm);
  tier.admit(0, 1, 500'000, warm);

  model::VirtualClock a, b;
  EXPECT_TRUE(tier.try_read(0, 1, 500'000, a));
  EXPECT_TRUE(tier.try_read(0, 1, 500'000, b));
  // 500 KB over 1 GB/s = 500 us service each; the second queues.
  EXPECT_NEAR(b.now() - a.now(), 500e-6, 50e-6);
}

}  // namespace
}  // namespace dds::fs
