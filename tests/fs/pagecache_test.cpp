#include "fs/pagecache.hpp"

#include <gtest/gtest.h>

namespace dds::fs {
namespace {

TEST(PageCache, FirstAccessMissesThenHits) {
  PageCache c(1000);
  EXPECT_FALSE(c.access(1, 0, 100));
  EXPECT_TRUE(c.access(1, 0, 100));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.used_bytes(), 100u);
}

TEST(PageCache, DistinctFilesDistinctBlocks) {
  PageCache c(1000);
  EXPECT_FALSE(c.access(1, 0, 100));
  EXPECT_FALSE(c.access(2, 0, 100));
  EXPECT_FALSE(c.access(1, 1, 100));
  EXPECT_TRUE(c.access(1, 0, 100));
  EXPECT_TRUE(c.access(2, 0, 100));
  EXPECT_EQ(c.used_bytes(), 300u);
}

TEST(PageCache, EvictsLeastRecentlyUsed) {
  PageCache c(300);
  c.access(1, 0, 100);  // A
  c.access(1, 1, 100);  // B
  c.access(1, 2, 100);  // C (full)
  c.access(1, 0, 100);  // touch A -> B is now LRU
  c.access(1, 3, 100);  // D evicts B
  EXPECT_TRUE(c.access(1, 0, 100));   // A still resident
  EXPECT_FALSE(c.access(1, 1, 100));  // B was evicted
  EXPECT_LE(c.used_bytes(), 300u);
}

TEST(PageCache, OversizedBlockNeverCached) {
  PageCache c(100);
  EXPECT_FALSE(c.access(1, 0, 500));
  EXPECT_FALSE(c.access(1, 0, 500));
  EXPECT_EQ(c.used_bytes(), 0u);
}

TEST(PageCache, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  PageCache c(10'000);
  // Working set of 50 blocks x 100 B = 5 KB fits.
  for (int b = 0; b < 50; ++b) c.access(7, b, 100);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int b = 0; b < 50; ++b) EXPECT_TRUE(c.access(7, b, 100));
  }
}

TEST(PageCache, WorkingSetLargerThanCacheKeepsMissing) {
  PageCache c(1'000);
  // 100 blocks x 100 B = 10 KB >> 1 KB cache, cyclic scan: always misses.
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int b = 0; b < 100; ++b) EXPECT_FALSE(c.access(9, b, 100));
  }
}

TEST(PageCache, ClearResetsEverything) {
  PageCache c(1000);
  c.access(1, 0, 100);
  c.access(1, 0, 100);
  c.clear();
  EXPECT_EQ(c.used_bytes(), 0u);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_FALSE(c.access(1, 0, 100));
}

}  // namespace
}  // namespace dds::fs
