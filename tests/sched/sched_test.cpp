// Locality-aware batch scheduler (src/sched): matching correctness.
//
// The load-bearing claims, each checked here:
//   * every assignment is a *permutation* of the shuffle's slots — the
//     global-batch multiset (hence the canonical-order gradient) never
//     changes;
//   * the greedy owner-first pass is cost-optimal — proven against the
//     exact Hungarian oracle on small instances, not just argued;
//   * assignments are a pure function of (permutation, layout) — identical
//     across execution engines (fibers vs threads);
//   * the sampler re-derives against the *live* layout, so an elastic
//     width change is picked up by the very next batch with no hook.
#include "sched/sampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "elastic/controller.hpp"
#include "sched/hungarian.hpp"
#include "simmpi/runtime.hpp"

namespace dds::sched {
namespace {

/// A layout over `num_samples` equal-length samples striped at `width`
/// (Block placement, hot-prefix fraction `hot_fraction`).
core::Layout make_layout(int nranks, int width, std::uint64_t num_samples,
                         double hot_fraction = 1.0) {
  const core::ChunkAssignment assignment(num_samples, width,
                                         core::Placement::Block);
  std::vector<std::uint32_t> lengths(num_samples, 64);
  std::vector<std::size_t> counts(static_cast<std::size_t>(width));
  for (int g = 0; g < width; ++g) {
    counts[static_cast<std::size_t>(g)] = assignment.chunk_size(g);
  }
  return core::Layout(nranks, width, core::Placement::Block,
                      core::DataRegistry::build(assignment, lengths, counts),
                      hot_fraction);
}

/// One global batch drawn without replacement from [0, num_samples).
std::vector<std::uint64_t> random_batch(std::uint64_t num_samples,
                                        std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  auto perm = rng.permutation(num_samples);
  perm.resize(size);
  return perm;
}

bool is_permutation_of_slots(const BatchAssignment& a, std::size_t size) {
  std::vector<std::uint32_t> sorted = a.slots;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < size; ++i) {
    if (sorted[i] != static_cast<std::uint32_t>(i)) return false;
  }
  return sorted.size() == size;
}

TEST(AssignOwnerGreedy, ProducesPermutationWithExactCapacity) {
  for (const auto& [nranks, width, batch] :
       {std::tuple{8, 2, 16ULL}, {8, 4, 8ULL}, {12, 3, 5ULL}, {6, 6, 9ULL}}) {
    const auto layout = make_layout(nranks, width, 4096);
    const auto ids = random_batch(
        4096, static_cast<std::size_t>(nranks) * batch, 17);
    const BatchAssignment a = assign_owner_greedy(ids, layout, batch);
    EXPECT_TRUE(is_permutation_of_slots(a, ids.size()))
        << "nranks=" << nranks << " width=" << width;
    EXPECT_EQ(a.nranks(), nranks);
    for (int r = 0; r < nranks; ++r) {
      const auto mine = a.of_rank(r);
      EXPECT_EQ(mine.size(), batch);
      EXPECT_TRUE(std::is_sorted(mine.begin(), mine.end()));
    }
    EXPECT_EQ(assignment_remote_cost(a, ids, layout),
              ids.size() - a.local_slots);
  }
}

TEST(AssignOwnerGreedy, PerfectlyBalancedBatchIsFullyLocal) {
  // One sample per owner per replica group: every class exactly fills its
  // capacity, so the optimum is zero remote and greedy must reach it.
  const int nranks = 8, width = 4;
  const auto layout = make_layout(nranks, width, 4096);
  std::vector<std::uint64_t> ids;
  for (int g = 0; g < nranks / width; ++g) {
    for (int owner = 0; owner < width; ++owner) {
      // Block placement: owner o's chunk is ids [o*1024, (o+1)*1024).
      ids.push_back(static_cast<std::uint64_t>(owner) * 1024 +
                    static_cast<std::uint64_t>(g));
    }
  }
  const BatchAssignment a = assign_owner_greedy(ids, layout, 1);
  EXPECT_EQ(a.local_slots, ids.size());
  EXPECT_EQ(assignment_remote_cost(a, ids, layout), 0u);
}

TEST(AssignOwnerGreedy, ColdSamplesAreNeverCountedLocal) {
  // hot_fraction 0.5: the back half of each owner's (equal-length) chunk
  // is cold, and no placement can make a cold sample a zero-cost one.
  const auto layout = make_layout(4, 4, 1024, 0.5);
  std::vector<std::uint64_t> ids;
  // Owner 0's chunk is [0, 256); its cold suffix starts at 128.
  for (std::uint64_t i = 0; i < 8; ++i) ids.push_back(200 + i);  // all cold
  const BatchAssignment a = assign_owner_greedy(ids, layout, 2);
  EXPECT_EQ(a.local_slots, 0u);
  EXPECT_EQ(assignment_remote_cost(a, ids, layout), ids.size());
}

TEST(Hungarian, SolvesHandBuiltMatrices) {
  // 3x3 with a forced non-diagonal optimum.
  const std::vector<std::uint64_t> cost = {4, 1, 3,   //
                                           2, 0, 5,   //
                                           3, 2, 2};
  std::vector<std::size_t> row_of_col;
  EXPECT_EQ(hungarian_min_cost(cost, 3, &row_of_col), 5u);
  // Every column got a distinct row.
  std::vector<std::size_t> rows = row_of_col;
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, (std::vector<std::size_t>{0, 1, 2}));

  const std::vector<std::uint64_t> identity = {0, 1, 1, 0};
  EXPECT_EQ(hungarian_min_cost(identity, 2), 0u);
}

TEST(Hungarian, GreedyMatchesExactOptimumOnSmallInstances) {
  // The disjoint-candidate-class argument says greedy is optimal, not just
  // good.  Prove it on every small instance we can afford, with and
  // without a cold tier.
  int checked = 0;
  for (const double hot : {1.0, 0.5}) {
    for (const auto& [nranks, width, batch] :
         {std::tuple{4, 2, 2ULL}, {4, 4, 2ULL}, {6, 3, 2ULL}, {8, 2, 2ULL},
          {6, 2, 3ULL}}) {
      const auto layout = make_layout(nranks, width, 512, hot);
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto ids = random_batch(
            512, static_cast<std::size_t>(nranks) * batch, seed);
        const BatchAssignment greedy =
            assign_owner_greedy(ids, layout, batch);
        const BatchAssignment exact = assign_hungarian(ids, layout, batch);
        EXPECT_TRUE(is_permutation_of_slots(exact, ids.size()));
        EXPECT_EQ(assignment_remote_cost(greedy, ids, layout),
                  assignment_remote_cost(exact, ids, layout))
            << "nranks=" << nranks << " width=" << width << " hot=" << hot
            << " seed=" << seed;
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 2 * 5 * 8);
}

// ---- sampler semantics across ranks ----------------------------------------

constexpr std::uint64_t kSamples = 1024;
constexpr std::uint64_t kBatch = 8;

/// Runs the locality sampler on `nranks` in-process ranks and returns, per
/// step, the concatenation of every rank's batch_ids (rank order).
std::vector<std::vector<std::uint64_t>> gather_epoch(
    int nranks, int width, std::uint64_t steps,
    std::optional<simmpi::Engine> engine = std::nullopt) {
  std::vector<std::vector<std::uint64_t>> per_step(steps);
  std::mutex mu;
  simmpi::Runtime rt(nranks, model::perlmutter(), /*seed=*/11,
                     /*deterministic=*/false, engine);
  rt.run([&](simmpi::Comm& comm) {
    const core::Layout layout = make_layout(nranks, width, kSamples);
    LocalityAwareSampler sampler(
        train::GlobalShuffleSampler(kSamples, kBatch, /*seed=*/5), &layout,
        core::LocalityMode::OwnerGreedy);
    sampler.begin_epoch(0, comm);
    ASSERT_GE(sampler.steps_per_epoch(), steps);
    for (std::uint64_t step = 0; step < steps; ++step) {
      const auto mine = sampler.batch_ids(step);
      const auto all =
          comm.allgatherv(std::span<const std::uint64_t>(mine));
      if (comm.rank() == 0) {
        const std::scoped_lock lock(mu);
        per_step[step] = all;
      }
    }
  });
  return per_step;
}

TEST(LocalityAwareSampler, EveryBatchIsAPermutationOfTheShuffles) {
  const int nranks = 8, width = 4;
  const std::uint64_t steps = 4;
  const auto scheduled = gather_epoch(nranks, width, steps);

  // Reference: the unwrapped shuffle's global batches.
  std::vector<std::vector<std::uint64_t>> reference(steps);
  simmpi::Runtime rt(nranks, model::perlmutter());
  rt.run([&](simmpi::Comm& comm) {
    train::GlobalShuffleSampler ref(kSamples, kBatch, /*seed=*/5);
    ref.begin_epoch(0, comm);
    if (comm.rank() == 0) {
      for (std::uint64_t step = 0; step < steps; ++step) {
        reference[step] = ref.global_batch_ids(step);
      }
    }
  });

  for (std::uint64_t step = 0; step < steps; ++step) {
    auto got = scheduled[step];
    auto want = reference[step];
    ASSERT_EQ(got.size(), want.size());
    EXPECT_NE(got, want) << "scheduler never reassigned anything";
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "step " << step
                         << ": global-batch multiset changed";
  }
}

TEST(LocalityAwareSampler, IdenticalAcrossExecutionEngines) {
  const int nranks = 8, width = 2;
  const std::uint64_t steps = 3;
  const auto fibers =
      gather_epoch(nranks, width, steps, simmpi::Engine::Fibers);
  const auto threads =
      gather_epoch(nranks, width, steps, simmpi::Engine::Threads);
  EXPECT_EQ(fibers, threads);
}

TEST(LocalityAwareSampler, RederivesAgainstLiveLayoutAfterWidthChange) {
  const int nranks = 8;
  simmpi::Runtime rt(nranks, model::perlmutter());
  rt.run([&](simmpi::Comm& comm) {
    // The sampler holds a *pointer*; assigning a re-striped Layout through
    // it models exactly what DDStore::adopt_layout does to its member.
    core::Layout layout = make_layout(nranks, 8, kSamples);
    LocalityAwareSampler sampler(
        train::GlobalShuffleSampler(kSamples, kBatch, /*seed=*/5), &layout,
        core::LocalityMode::OwnerGreedy);
    sampler.begin_epoch(0, comm);

    const BatchAssignment before = sampler.plan(0);
    layout = layout.with_width(2);  // elastic reshard, in place
    const BatchAssignment after = sampler.plan(0);

    // The re-derived plan is the fresh computation against the new layout…
    train::GlobalShuffleSampler ref(kSamples, kBatch, /*seed=*/5);
    ref.begin_epoch(0, comm);
    const auto ids = ref.global_batch_ids(0);
    const BatchAssignment fresh = assign_owner_greedy(ids, layout, kBatch);
    EXPECT_EQ(after.slots, fresh.slots);
    // …and optimal for it (more groups at width 2 => no fewer local slots).
    EXPECT_GE(after.local_slots, before.local_slots);
    EXPECT_EQ(assignment_remote_cost(after, ids, layout),
              ids.size() - after.local_slots);
  });
}

// ---- elastic controller's locality-aware benefit model ----------------------

TEST(WidthController, OwnerGreedyDampensStepDownSaving) {
  // Same measured signals; the only difference is the scheduling mode.
  // Under the shuffle model the step looks profitable; under owner-greedy
  // the remote time is overflow that barely shrinks, so the controller
  // must hold instead of paying for a reshard.
  elastic::WidthObservation obs;
  obs.epoch_seconds = 100.0;
  obs.fetch_seconds = 40.0;
  obs.local_gets = 250;
  obs.remote_gets = 750;

  const double cost_down = 30.0;  // amortized: needs > 7.5 s/epoch saving

  elastic::AdaptiveWidthController shuffle_ctl(16, 1 << 20, {});
  obs.owner_greedy = false;
  EXPECT_EQ(shuffle_ctl.on_epoch(4, obs, cost_down).reason,
            std::string("step_down"));

  elastic::AdaptiveWidthController greedy_ctl(16, 1 << 20, {});
  obs.owner_greedy = true;
  // saving = 30 * (1 - sqrt(1/3)) ~= 12.7 with w=4 -> d=2... use a remote
  // share small enough that even the full greedy saving cannot pay: the
  // realistic owner-greedy signal (overflow-only remote traffic).
  obs.fetch_seconds = 4.0;
  obs.remote_gets = 75;
  obs.local_gets = 925;
  EXPECT_EQ(greedy_ctl.on_epoch(4, obs, cost_down).reason,
            std::string("settled"));
}

}  // namespace
}  // namespace dds::sched
