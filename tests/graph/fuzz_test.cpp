// Robustness sweep: the deserializer must never crash, hang, or accept
// corrupt input silently — every mutation either throws dds::DataError or
// yields a sample that passes validate().
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "datagen/dataset.hpp"

namespace dds::graph {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, ByteFlipsNeverCrashDeserializer) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const auto ds = datagen::make_dataset(datagen::DatasetKind::AisdExDiscrete,
                                        4, seed);
  const ByteBuffer original = ds->make(seed % 4).to_bytes();

  for (int trial = 0; trial < 300; ++trial) {
    ByteBuffer corrupt = original;
    const int flips = 1 + static_cast<int>(rng.uniform_u64(8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.uniform_u64(corrupt.size());
      corrupt[pos] ^= static_cast<std::byte>(1 + rng.uniform_u64(255));
    }
    try {
      const GraphSample s = GraphSample::deserialize(corrupt);
      s.validate();  // accepted input must be structurally sound
    } catch (const DataError&) {
      // rejected loudly — fine
    } catch (const InternalError&) {
      // bounds assertions on absurd sizes — also a loud rejection
    }
  }
}

TEST_P(FuzzSweep, TruncationsNeverCrashDeserializer) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed + 1000);
  const auto ds = datagen::make_dataset(datagen::DatasetKind::Ising, 2, seed);
  const ByteBuffer original = ds->make(0).to_bytes();
  for (int trial = 0; trial < 100; ++trial) {
    const auto cut = rng.uniform_u64(original.size());
    try {
      (void)GraphSample::deserialize(ByteSpan(original.data(), cut));
      // A prefix that parses must be the degenerate empty case only if the
      // format allows it — in practice kept-magic prefixes always throw.
    } catch (const DataError&) {
    }
  }
}

TEST_P(FuzzSweep, GarbageInputRejected) {
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 100; ++trial) {
    ByteBuffer junk(rng.uniform_u64(512));
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.uniform_u64(256));
    }
    EXPECT_THROW((void)GraphSample::deserialize(junk), Error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Values(1, 2, 3, 4, 5),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace dds::graph
