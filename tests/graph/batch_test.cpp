#include "graph/batch.hpp"

#include <gtest/gtest.h>

namespace dds::graph {
namespace {

GraphSample make_sample(std::uint64_t id, std::uint32_t nodes,
                        std::uint32_t fdim = 2, std::uint32_t tdim = 1) {
  GraphSample s;
  s.id = id;
  s.num_nodes = nodes;
  s.node_feature_dim = fdim;
  s.node_features.assign(static_cast<std::size_t>(nodes) * fdim,
                         static_cast<float>(id));
  // Chain topology.
  for (std::uint32_t i = 0; i + 1 < nodes; ++i) {
    s.edge_src.push_back(i);
    s.edge_dst.push_back(i + 1);
    s.edge_src.push_back(i + 1);
    s.edge_dst.push_back(i);
  }
  s.y.assign(tdim, static_cast<float>(id) * 10.0f);
  return s;
}

TEST(GraphBatch, CollateConcatenatesAndShifts) {
  const std::vector<GraphSample> samples = {make_sample(0, 3),
                                            make_sample(1, 2),
                                            make_sample(2, 4)};
  const GraphBatch b = GraphBatch::collate(samples);

  EXPECT_EQ(b.num_graphs, 3u);
  EXPECT_EQ(b.num_nodes, 9u);
  EXPECT_EQ(b.num_edges(), (2u * 2 + 1 * 2 + 3 * 2));
  EXPECT_EQ(b.graph_offset, (std::vector<std::uint32_t>{0, 3, 5, 9}));

  // Second sample's first edge (0->1 locally) shifts to (3->4).
  EXPECT_EQ(b.edge_src[4], 3u);
  EXPECT_EQ(b.edge_dst[4], 4u);
  // Third sample's edges live in [5, 9).
  for (std::size_t e = 6; e < b.num_edges(); ++e) {
    EXPECT_GE(b.edge_src[e], 5u);
    EXPECT_LT(b.edge_dst[e], 9u);
  }
}

TEST(GraphBatch, NodeGraphAssignment) {
  const std::vector<GraphSample> samples = {make_sample(0, 2),
                                            make_sample(1, 3)};
  const GraphBatch b = GraphBatch::collate(samples);
  EXPECT_EQ(b.node_graph, (std::vector<std::uint32_t>{0, 0, 1, 1, 1}));
}

TEST(GraphBatch, FeaturesAndTargetsStackInOrder) {
  const std::vector<GraphSample> samples = {make_sample(3, 1),
                                            make_sample(4, 1)};
  const GraphBatch b = GraphBatch::collate(samples);
  EXPECT_FLOAT_EQ(b.node_features[0], 3.0f);
  EXPECT_FLOAT_EQ(b.node_features[2], 4.0f);
  ASSERT_EQ(b.y.size(), 2u);
  EXPECT_FLOAT_EQ(b.y[0], 30.0f);
  EXPECT_FLOAT_EQ(b.y[1], 40.0f);
}

TEST(GraphBatch, SingleSampleBatch) {
  const std::vector<GraphSample> samples = {make_sample(5, 4)};
  const GraphBatch b = GraphBatch::collate(samples);
  EXPECT_EQ(b.num_graphs, 1u);
  EXPECT_EQ(b.num_nodes, 4u);
  EXPECT_EQ(b.graph_offset, (std::vector<std::uint32_t>{0, 4}));
}

TEST(GraphBatch, EmptyBatchThrows) {
  EXPECT_THROW(GraphBatch::collate({}), DataError);
}

TEST(GraphBatch, FeatureDimMismatchThrows) {
  const std::vector<GraphSample> samples = {make_sample(0, 2, 2),
                                            make_sample(1, 2, 3)};
  EXPECT_THROW(GraphBatch::collate(samples), DataError);
}

TEST(GraphBatch, TargetDimMismatchThrows) {
  const std::vector<GraphSample> samples = {make_sample(0, 2, 2, 1),
                                            make_sample(1, 2, 2, 5)};
  EXPECT_THROW(GraphBatch::collate(samples), DataError);
}

TEST(GraphBatch, PayloadBytesPositive) {
  const std::vector<GraphSample> samples = {make_sample(0, 10)};
  const GraphBatch b = GraphBatch::collate(samples);
  EXPECT_GT(b.payload_bytes(), 100u);
}

TEST(GraphBatch, MultiTargetDim) {
  const std::vector<GraphSample> samples = {make_sample(0, 2, 2, 100),
                                            make_sample(1, 3, 2, 100)};
  const GraphBatch b = GraphBatch::collate(samples);
  EXPECT_EQ(b.target_dim, 100u);
  EXPECT_EQ(b.y.size(), 200u);
}

}  // namespace
}  // namespace dds::graph
