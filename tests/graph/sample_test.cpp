#include "graph/sample.hpp"

#include <gtest/gtest.h>

namespace dds::graph {
namespace {

GraphSample tiny_sample(std::uint64_t id = 7) {
  GraphSample s;
  s.id = id;
  s.num_nodes = 3;
  s.node_feature_dim = 2;
  s.node_features = {1, 2, 3, 4, 5, 6};
  s.edge_src = {0, 1, 1, 2};
  s.edge_dst = {1, 0, 2, 1};
  s.positions = {0, 0, 0, 1, 0, 0, 2, 0, 0};
  s.y = {0.5f};
  return s;
}

TEST(GraphSample, SerializeRoundTrip) {
  const GraphSample s = tiny_sample();
  const ByteBuffer buf = s.to_bytes();
  EXPECT_EQ(buf.size(), s.serialized_size());
  const GraphSample back = GraphSample::deserialize(buf);
  EXPECT_EQ(back, s);
}

TEST(GraphSample, EmptyPositionsAllowed) {
  GraphSample s = tiny_sample();
  s.positions.clear();
  const GraphSample back = GraphSample::deserialize(s.to_bytes());
  EXPECT_TRUE(back.positions.empty());
  EXPECT_EQ(back, s);
}

TEST(GraphSample, BadMagicRejected) {
  ByteBuffer buf = tiny_sample().to_bytes();
  buf[0] = std::byte{0x00};
  EXPECT_THROW(GraphSample::deserialize(buf), DataError);
}

TEST(GraphSample, BadVersionRejected) {
  ByteBuffer buf = tiny_sample().to_bytes();
  buf[4] = std::byte{0x63};  // version field follows the 4-byte magic
  EXPECT_THROW(GraphSample::deserialize(buf), DataError);
}

TEST(GraphSample, TruncatedInputRejected) {
  const ByteBuffer buf = tiny_sample().to_bytes();
  for (std::size_t cut : {buf.size() - 1, buf.size() / 2, std::size_t{5}}) {
    EXPECT_THROW(
        GraphSample::deserialize(ByteSpan(buf.data(), cut)), DataError)
        << "cut at " << cut;
  }
}

TEST(GraphSample, ValidateCatchesFeatureMismatch) {
  GraphSample s = tiny_sample();
  s.node_features.pop_back();
  EXPECT_THROW(s.validate(), DataError);
}

TEST(GraphSample, ValidateCatchesEdgeOutOfRange) {
  GraphSample s = tiny_sample();
  s.edge_dst[2] = 99;
  EXPECT_THROW(s.validate(), DataError);
}

TEST(GraphSample, ValidateCatchesEdgeLengthMismatch) {
  GraphSample s = tiny_sample();
  s.edge_src.push_back(0);
  EXPECT_THROW(s.validate(), DataError);
}

TEST(GraphSample, ValidateCatchesBadPositions) {
  GraphSample s = tiny_sample();
  s.positions.pop_back();
  EXPECT_THROW(s.validate(), DataError);
}

TEST(GraphSample, DeserializeValidates) {
  GraphSample s = tiny_sample();
  s.edge_dst[0] = 50;  // invalid, but serializable
  EXPECT_THROW(GraphSample::deserialize(s.to_bytes()), DataError);
}

TEST(GraphSample, LargeTargetVector) {
  GraphSample s = tiny_sample();
  s.y.assign(37'500, 0.25f);
  const GraphSample back = GraphSample::deserialize(s.to_bytes());
  EXPECT_EQ(back.target_dim(), 37'500u);
  EXPECT_FLOAT_EQ(back.y[1000], 0.25f);
}

}  // namespace
}  // namespace dds::graph
