// Fiber engine tests: default-engine selection, bit-equal same-seed replay
// at 256 ranks, cooperative yield correctness for every blocking op
// (barrier, two-sided recv, window lock epochs), engine parity against the
// deterministic thread engine, abort propagation, loud deadlock detection,
// and the DDS_FIBER_STACK_KB / guard-page overflow contract.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "model/machine.hpp"
#include "simmpi/fiber.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/window.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DDS_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DDS_TEST_UNDER_SANITIZER 1
#endif
#endif
#ifndef DDS_TEST_UNDER_SANITIZER
#define DDS_TEST_UNDER_SANITIZER 0
#endif

namespace dds::simmpi {
namespace {

/// Scoped environment override restoring the previous value on exit, so
/// tests that steer DDS_ENGINE / DDS_FIBER_STACK_KB compose with whatever
/// environment the suite itself runs under (e.g. CI's DDS_ENGINE=threads
/// TSan job).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      setenv(name, value, /*overwrite=*/1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      setenv(name_, saved_->c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

/// Mixed workload touching every cooperative wait point: collectives
/// (barrier-backed), a parity-ordered ring of two-sided sends/recvs, and a
/// window epoch with shared reads plus exclusively-locked accumulates.
/// Returns every rank's final virtual-clock reading.
std::vector<double> run_workload(int nranks, Engine eng,
                                 bool deterministic = true) {
  Runtime rt(nranks, model::test_machine(), /*seed=*/42, deterministic, eng);
  std::vector<double> clocks(static_cast<std::size_t>(nranks), 0.0);
  rt.run([&](Comm& c) {
    const int rank = c.rank();
    double v = static_cast<double>(rank + 1);
    for (int i = 0; i < 3; ++i) v = c.allreduce(v, Op::Sum);
    const std::vector<double> payload(64, v);
    const int next = (rank + 1) % c.size();
    const int prev = (rank + c.size() - 1) % c.size();
    if (rank % 2 == 0) {
      c.send(std::span<const double>(payload), next, /*tag=*/7);
      c.recv<double>(prev, /*tag=*/7);
    } else {
      c.recv<double>(prev, /*tag=*/7);
      c.send(std::span<const double>(payload), next, /*tag=*/7);
    }
    std::vector<double> region(8, 0.0);
    Window win(c, MutableByteSpan(reinterpret_cast<std::byte*>(region.data()),
                                  region.size() * sizeof(double)));
    win.lock(0, LockType::Exclusive);
    const std::vector<double> one{1.0};
    win.accumulate_add(std::span<const double>(one), 0, 0);
    win.unlock(0);
    win.fence();
    if (rank == 0) {
      EXPECT_EQ(region[0], static_cast<double>(c.size()));
    }
    win.free();
    c.barrier();
    clocks[static_cast<std::size_t>(rank)] = c.clock().now();
  });
  return clocks;
}

TEST(FiberEngine, IsTheDefaultEngine) {
  const ScopedEnv env("DDS_ENGINE", nullptr);
  EXPECT_EQ(engine_from_env(), Engine::Fibers);
  Runtime rt(4, model::test_machine());
  EXPECT_EQ(rt.engine(), Engine::Fibers);
  EXPECT_NE(rt.fiber_scheduler(), nullptr);
  // Fibers are cooperative whether or not `deterministic` was requested.
  EXPECT_TRUE(rt.deterministic());
  EXPECT_NE(rt.scheduler(), nullptr);
}

TEST(FiberEngine, EngineFromEnvParsesAndRejects) {
  {
    const ScopedEnv env("DDS_ENGINE", "threads");
    EXPECT_EQ(engine_from_env(), Engine::Threads);
  }
  {
    const ScopedEnv env("DDS_ENGINE", "fibers");
    EXPECT_EQ(engine_from_env(), Engine::Fibers);
  }
  {
    const ScopedEnv env("DDS_ENGINE", "green-threads");
    EXPECT_THROW(engine_from_env(), ConfigError);
  }
  EXPECT_STREQ(engine_name(Engine::Fibers), "fibers");
  EXPECT_STREQ(engine_name(Engine::Threads), "threads");
}

TEST(FiberEngine, SameSeedReplayIsBitEqualAt256Ranks) {
  // The headline determinism contract at a rank count the thread engine
  // cannot reach in reasonable test time: two runs, exact double equality
  // on every rank's final clock.
  const auto a = run_workload(256, Engine::Fibers);
  const auto b = run_workload(256, Engine::Fibers);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r], b[r]) << "rank " << r;
    EXPECT_GT(a[r], 0.0) << "rank " << r;
  }
}

TEST(FiberEngine, MatchesDeterministicThreadEngineExactly) {
  // Engine parity at the simmpi level: same workload, same seed, both
  // cooperative engines — clocks must agree bit for bit, because the fiber
  // rotation IS the thread engine's token rotation minus the kernel.
  const auto fibers = run_workload(8, Engine::Fibers);
  const auto threads = run_workload(8, Engine::Threads);
  ASSERT_EQ(fibers.size(), threads.size());
  for (std::size_t r = 0; r < fibers.size(); ++r) {
    EXPECT_EQ(fibers[r], threads[r]) << "rank " << r;
  }
}

TEST(FiberEngine, CooperativeRecvUnblocksSender) {
  // Rank 1 parks in recv before rank 0 ever sends: the park must hand the
  // execution token onward (to rank 0) instead of spinning the only thread.
  Runtime rt(2, model::test_machine(), 42, false, Engine::Fibers);
  rt.run([&](Comm& c) {
    if (c.rank() == 1) {
      const auto got = c.recv<int>(0, /*tag=*/3);
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], 41);
    } else {
      // A few collective-free hops so rank 1 is already parked when the
      // message is finally injected.
      const std::vector<int> payload{41};
      c.send(std::span<const int>(payload), 1, /*tag=*/3);
    }
  });
}

TEST(FiberEngine, SharedAndExclusiveWindowEpochsInterleave) {
  constexpr int kRanks = 8;
  constexpr int kRounds = 16;
  Runtime rt(kRanks, model::test_machine(), 42, false, Engine::Fibers);
  rt.run([&](Comm& c) {
    std::vector<double> region(4, 0.0);
    Window win(c, MutableByteSpan(reinterpret_cast<std::byte*>(region.data()),
                                  region.size() * sizeof(double)));
    for (int round = 0; round < kRounds; ++round) {
      win.lock(0, LockType::Exclusive);
      const std::vector<double> one{1.0};
      win.accumulate_add(std::span<const double>(one), 0, 0);
      win.unlock(0);
      // Shared read-back of the running total (any interleaving is legal;
      // the final fence settles the exact value).
      double seen = 0.0;
      win.lock(0, LockType::Shared);
      win.get(MutableByteSpan(reinterpret_cast<std::byte*>(&seen),
                              sizeof(seen)),
              0, 0);
      win.unlock(0);
      EXPECT_GE(seen, 1.0);
    }
    win.fence();
    if (c.rank() == 0) {
      EXPECT_EQ(region[0], static_cast<double>(kRanks * kRounds));
    }
    win.free();
  });
}

TEST(FiberEngine, AbortPropagatesAndRuntimeStaysReusable) {
  Runtime rt(3, model::test_machine(), 42, false, Engine::Fibers);
  EXPECT_THROW(rt.run([&](Comm& c) {
                 if (c.rank() == 1) throw IoError("injected");
                 c.barrier();
                 c.barrier();
               }),
               IoError);
  // The abort flag must be clean again: a fresh run on the same runtime
  // completes normally.
  rt.run([&](Comm& c) { c.barrier(); });
}

TEST(FiberEngine, CooperativeDeadlockFailsLoudly) {
  // Rank 0 waits for a message nobody will send while rank 1 exits: every
  // live fiber is parked on a false predicate.  The scheduler must detect
  // it immediately (no spin cap needed), drain the parked fiber via the
  // abort flag, and surface the same InternalError the thread engine does.
  Runtime rt(2, model::test_machine(), 42, false, Engine::Fibers);
  EXPECT_THROW(rt.run([&](Comm& c) {
                 if (c.rank() == 0) c.recv<int>(1, /*tag=*/99);
               }),
               InternalError);
  rt.run([&](Comm& c) { c.barrier(); });  // still reusable afterwards
}

TEST(FiberEngine, StackSizeEnvIsHonoredAndSwitchesAreCounted) {
  const ScopedEnv env("DDS_FIBER_STACK_KB", "256");
  Runtime rt(4, model::test_machine(), 42, false, Engine::Fibers);
  ASSERT_NE(rt.fiber_scheduler(), nullptr);
  EXPECT_EQ(rt.fiber_scheduler()->stack_bytes(), 256u * 1024u);
  rt.run([&](Comm& c) {
    c.barrier();
    c.allreduce(1.0, Op::Sum);
  });
  // 4 ranks × several blocking ops each: the engine must actually have
  // switched contexts, not silently fallen back to something else.
  EXPECT_GT(rt.fiber_scheduler()->switch_count(), 8u);
}

TEST(FiberEngine, BogusStackSizeEnvIsRejected) {
  const ScopedEnv env("DDS_FIBER_STACK_KB", "lots");
  EXPECT_THROW(FiberScheduler::stack_bytes_from_env(), ConfigError);
}

TEST(FiberEngine, TinyStackRequestsAreClampedUp) {
  const ScopedEnv env("DDS_FIBER_STACK_KB", "1");
  EXPECT_GE(FiberScheduler::stack_bytes_from_env(), 64u * 1024u);
}

#if !DDS_TEST_UNDER_SANITIZER
namespace {
/// Burns fiber stack with one page-sized frame per level; the volatile
/// sink defeats tail-call and frame elision.
__attribute__((noinline)) int burn_stack(int depth, volatile std::byte* out) {
  volatile std::byte frame[4096];
  frame[0] = static_cast<std::byte>(depth);
  *out = frame[0];
  if (depth <= 0) return 0;
  return burn_stack(depth - 1, out) + static_cast<int>(frame[0]);
}
}  // namespace

using FiberEngineDeathTest = ::testing::Test;

TEST(FiberEngineDeathTest, OverflowHitsGuardPageLoudly) {
  // Deep recursion past the configured stack must die on the PROT_NONE
  // guard page (or the canary check) — never silently corrupt a neighbor
  // fiber's stack.  Sanitizer builds intercept the fault differently, so
  // this is gated to plain builds.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const ScopedEnv env("DDS_FIBER_STACK_KB", "64");
  EXPECT_DEATH(
      {
        Runtime rt(1, model::test_machine(), 42, false, Engine::Fibers);
        rt.run([&](Comm&) {
          volatile std::byte sink{};
          burn_stack(1 << 16, &sink);
        });
      },
      "");
}
#endif  // !DDS_TEST_UNDER_SANITIZER

}  // namespace
}  // namespace dds::simmpi
