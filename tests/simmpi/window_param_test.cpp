// Property sweep: RMA window correctness over rank counts, region sizes,
// and randomized offset/length access patterns.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "common/rng.hpp"
#include "simmpi/window.hpp"

namespace dds::simmpi {
namespace {

using model::test_machine;
using Config = std::tuple<int /*nranks*/, std::size_t /*region*/>;

class WindowSweep : public ::testing::TestWithParam<Config> {};

ByteBuffer pattern(int rank, std::size_t n) {
  ByteBuffer b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::byte>((rank * 193 + i * 7) & 0xff);
  }
  return b;
}

TEST_P(WindowSweep, RandomizedGetsReturnExactBytes) {
  const auto [nranks, region_size] = GetParam();
  Runtime rt(nranks, test_machine());
  rt.run([&, region_size = region_size](Comm& c) {
    ByteBuffer local = pattern(c.rank(), region_size);
    Window win(c, MutableByteSpan(local));
    Rng rng(1000 + static_cast<std::uint64_t>(c.rank()));
    for (int trial = 0; trial < 40; ++trial) {
      const int target = static_cast<int>(rng.uniform_u64(
          static_cast<std::uint64_t>(c.size())));
      const std::size_t len =
          1 + rng.uniform_u64(std::min<std::size_t>(region_size, 256));
      const std::size_t offset = rng.uniform_u64(region_size - len + 1);
      ByteBuffer dst(len);
      win.lock(target, LockType::Shared);
      win.get(MutableByteSpan(dst), target, offset);
      win.unlock(target);
      const ByteBuffer expect = pattern(target, region_size);
      ASSERT_EQ(0, std::memcmp(dst.data(), expect.data() + offset, len))
          << "target " << target << " off " << offset << " len " << len;
    }
    win.fence();
  });
}

TEST_P(WindowSweep, ClockMonotoneThroughRandomizedAccess) {
  const auto [nranks, region_size] = GetParam();
  Runtime rt(nranks, test_machine());
  rt.run([&, region_size = region_size](Comm& c) {
    ByteBuffer local(region_size);
    Window win(c, MutableByteSpan(local));
    double last = c.clock().now();
    for (int trial = 0; trial < 20; ++trial) {
      const int target = (c.rank() + trial) % c.size();
      ByteBuffer dst(std::min<std::size_t>(64, region_size));
      win.lock(target, LockType::Shared);
      win.get(MutableByteSpan(dst), target, 0);
      win.unlock(target);
      EXPECT_GT(c.clock().now(), last);
      last = c.clock().now();
    }
    win.fence();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowSweep,
    ::testing::Values(Config{1, 64}, Config{2, 1}, Config{2, 4096},
                      Config{3, 257}, Config{5, 1024}, Config{8, 65536},
                      Config{9, 333}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "r" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dds::simmpi
