#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "simmpi/runtime.hpp"

namespace dds::simmpi {
namespace {

using model::test_machine;

TEST(Collectives, BarrierSynchronizesClocksToMax) {
  Runtime rt(4, test_machine());
  rt.run([&](Comm& c) {
    c.clock().advance(0.001 * (c.rank() + 1));  // rank 3 is slowest: 4 ms
    c.barrier();
    EXPECT_GE(c.clock().now(), 0.004);
  });
  // All clocks equal after a barrier.
  const double t0 = rt.clock_of(0).now();
  for (int r = 1; r < 4; ++r) EXPECT_DOUBLE_EQ(rt.clock_of(r).now(), t0);
}

TEST(Collectives, AllreduceSum) {
  Runtime rt(8, test_machine());
  rt.run([](Comm& c) {
    const int total = c.allreduce(c.rank() + 1, Op::Sum);
    EXPECT_EQ(total, 36);  // 1+2+...+8
  });
}

TEST(Collectives, AllreduceMinMaxProd) {
  Runtime rt(4, test_machine());
  rt.run([](Comm& c) {
    EXPECT_EQ(c.allreduce(c.rank(), Op::Max), 3);
    EXPECT_EQ(c.allreduce(c.rank(), Op::Min), 0);
    EXPECT_EQ(c.allreduce(c.rank() + 1, Op::Prod), 24);
  });
}

TEST(Collectives, AllreduceInplaceVector) {
  Runtime rt(4, test_machine());
  rt.run([](Comm& c) {
    std::vector<double> grad = {1.0 * c.rank(), 1.0};
    c.allreduce_inplace(std::span<double>(grad), Op::Sum);
    EXPECT_DOUBLE_EQ(grad[0], 6.0);  // 0+1+2+3
    EXPECT_DOUBLE_EQ(grad[1], 4.0);
  });
}

TEST(Collectives, BcastScalarAndVector) {
  Runtime rt(5, test_machine());
  rt.run([](Comm& c) {
    std::uint64_t token = (c.rank() == 2) ? 777 : 0;
    c.bcast(&token, 1, 2);
    EXPECT_EQ(token, 777u);

    std::vector<float> v;
    if (c.rank() == 0) v = {1.0f, 2.0f, 3.0f};
    c.bcast(v, 0);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_FLOAT_EQ(v[2], 3.0f);
  });
}

TEST(Collectives, Allgather) {
  Runtime rt(6, test_machine());
  rt.run([](Comm& c) {
    const auto all = c.allgather(10 * c.rank());
    ASSERT_EQ(all.size(), 6u);
    for (int r = 0; r < 6; ++r) EXPECT_EQ(all[r], 10 * r);
  });
}

TEST(Collectives, AllgathervVariableCounts) {
  Runtime rt(4, test_machine());
  rt.run([](Comm& c) {
    // Rank r contributes r elements with value r.
    std::vector<int> mine(static_cast<std::size_t>(c.rank()), c.rank());
    std::vector<std::size_t> counts;
    const auto all = c.allgatherv(std::span<const int>(mine), &counts);
    ASSERT_EQ(counts.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_EQ(counts[r], static_cast<std::size_t>(r));
    ASSERT_EQ(all.size(), 6u);  // 0+1+2+3
    EXPECT_EQ(all[0], 1);
    EXPECT_EQ(all[5], 3);
  });
}

TEST(Collectives, Alltoallv) {
  Runtime rt(3, test_machine());
  rt.run([](Comm& c) {
    // Rank r sends {r*10 + d} to destination d.
    std::vector<std::vector<int>> send(3);
    for (int d = 0; d < 3; ++d) send[d] = {c.rank() * 10 + d};
    const auto recv = c.alltoallv(send);
    ASSERT_EQ(recv.size(), 3u);
    for (int s = 0; s < 3; ++s) EXPECT_EQ(recv[s], s * 10 + c.rank());
  });
}

TEST(Collectives, SplitFormsReplicaGroups) {
  // 8 ranks, width 4 -> 2 groups, as DDStore would split them.
  Runtime rt(8, test_machine());
  rt.run([](Comm& c) {
    const int width = 4;
    Comm group = c.split(c.rank() / width, c.rank());
    EXPECT_EQ(group.size(), width);
    EXPECT_EQ(group.rank(), c.rank() % width);
    EXPECT_EQ(group.world_rank(), c.rank());
    // Group collectives only involve members.
    const int sum = group.allreduce(1, Op::Sum);
    EXPECT_EQ(sum, width);
  });
}

TEST(Collectives, SplitRespectsKeyOrdering) {
  Runtime rt(4, test_machine());
  rt.run([](Comm& c) {
    // Reverse ordering via key.
    Comm rev = c.split(0, -c.rank());
    EXPECT_EQ(rev.rank(), c.size() - 1 - c.rank());
  });
}

TEST(Collectives, DupPreservesRankAndSize) {
  Runtime rt(4, test_machine());
  rt.run([](Comm& c) {
    Comm d = c.dup();
    EXPECT_EQ(d.rank(), c.rank());
    EXPECT_EQ(d.size(), c.size());
  });
}

TEST(Collectives, NestedSplit) {
  Runtime rt(8, test_machine());
  rt.run([](Comm& c) {
    Comm half = c.split(c.rank() / 4, c.rank());
    Comm pair = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(pair.size(), 2);
    const auto got = pair.allgather(c.rank());
    // Pairs are (0,1),(2,3),(4,5),(6,7) in world ranks.
    EXPECT_EQ(got[1] - got[0], 1);
  });
}

TEST(Collectives, CollectivesAdvanceClock) {
  Runtime rt(4, test_machine());
  rt.run([](Comm& c) {
    const double before = c.clock().now();
    c.barrier();
    EXPECT_GT(c.clock().now(), before);
  });
}

TEST(Runtime, ExceptionInOneRankPropagates) {
  Runtime rt(4, test_machine());
  EXPECT_THROW(rt.run([](Comm& c) {
                 if (c.rank() == 2) throw ConfigError("boom");
                 c.barrier();  // other ranks must not deadlock
                 c.barrier();
               }),
               ConfigError);
}

TEST(Runtime, ReusableAfterFailure) {
  Runtime rt(3, test_machine());
  EXPECT_THROW(
      rt.run([](Comm& c) {
        if (c.rank() == 0) throw DataError("x");
        c.barrier();
      }),
      DataError);
  std::atomic<int> ok{0};
  rt.run([&](Comm& c) {
    c.barrier();
    ok.fetch_add(1);
  });
  EXPECT_EQ(ok.load(), 3);
}

TEST(Runtime, ManyRanksScale) {
  // Sanity: a 256-thread world completes collectives promptly.
  Runtime rt(256, model::perlmutter());
  rt.run([](Comm& c) {
    const int total = c.allreduce(1, Op::Sum);
    EXPECT_EQ(total, 256);
  });
}

TEST(Runtime, ResetTimeClearsClocks) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) { c.barrier(); });
  EXPECT_GT(rt.max_clock(), 0.0);
  rt.reset_time();
  EXPECT_DOUBLE_EQ(rt.max_clock(), 0.0);
}

TEST(Runtime, RngStreamsPerRankAreDeterministic) {
  std::vector<std::uint64_t> first(4), second(4);
  {
    Runtime rt(4, test_machine(), /*seed=*/99);
    rt.run([&](Comm& c) { first[c.rank()] = c.rng().next(); });
  }
  {
    Runtime rt(4, test_machine(), /*seed=*/99);
    rt.run([&](Comm& c) { second[c.rank()] = c.rng().next(); });
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first[0], first[1]);
}

}  // namespace
}  // namespace dds::simmpi
