#include <gtest/gtest.h>

#include "simmpi/runtime.hpp"

namespace dds::simmpi {
namespace {

using model::test_machine;

TEST(P2P, SendRecvRoundTrip) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> payload = {1, 2, 3, 4};
      c.send(std::span<const int>(payload), 1, /*tag=*/7);
    } else {
      const auto got = c.recv<int>(0, 7);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
    }
  });
}

TEST(P2P, TagsAreMatched) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> a = {1}, b = {2};
      c.send(std::span<const int>(a), 1, 10);
      c.send(std::span<const int>(b), 1, 20);
    } else {
      // Receive out of order by tag.
      EXPECT_EQ(c.recv<int>(0, 20)[0], 2);
      EXPECT_EQ(c.recv<int>(0, 10)[0], 1);
    }
  });
}

TEST(P2P, AnySourceReportsActualSender) {
  Runtime rt(3, test_machine());
  rt.run([](Comm& c) {
    if (c.rank() != 0) {
      const std::vector<int> v = {c.rank()};
      c.send(std::span<const int>(v), 0, 1);
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int src = -2;
        const auto got = c.recv<int>(Comm::kAnySource, 1, &src);
        EXPECT_EQ(got[0], src);
        seen |= 1 << src;
      }
      EXPECT_EQ(seen, 0b110);
    }
  });
}

TEST(P2P, RecvAdvancesClockToArrival) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      c.clock().advance(1.0);  // sender is "late"
      const std::vector<std::byte> big(1 << 20);
      c.send_bytes(ByteSpan(big), 1, 0);
    } else {
      (void)c.recv_bytes(0, 0);
      // Receiver cannot see the data before the sender injected it.
      EXPECT_GE(c.clock().now(), 1.0);
    }
  });
}

TEST(P2P, EmptyMessage) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_bytes(ByteSpan{}, 1, 3);
    } else {
      EXPECT_TRUE(c.recv_bytes(0, 3).empty());
    }
  });
}

TEST(P2P, ManyMessagesInOrder) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) {
    constexpr int kN = 200;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        const std::vector<int> v = {i};
        c.send(std::span<const int>(v), 1, 0);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(c.recv<int>(0, 0)[0], i);  // FIFO per (src, tag)
      }
    }
  });
}

}  // namespace
}  // namespace dds::simmpi
