#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "simmpi/window.hpp"

namespace dds::simmpi {
namespace {

using model::test_machine;

/// Fills a buffer with a rank-specific pattern.
ByteBuffer pattern_buffer(int rank, std::size_t n) {
  ByteBuffer buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<std::byte>((rank * 131 + i) & 0xff);
  }
  return buf;
}

TEST(Window, GetReadsRemoteMemory) {
  Runtime rt(4, test_machine());
  rt.run([](Comm& c) {
    ByteBuffer local = pattern_buffer(c.rank(), 256);
    Window win(c, MutableByteSpan(local));

    const int target = (c.rank() + 1) % c.size();
    ByteBuffer dst(256);
    win.lock(target, LockType::Shared);
    win.get(MutableByteSpan(dst), target, 0);
    win.unlock(target);

    EXPECT_EQ(dst, pattern_buffer(target, 256));
    win.fence();
  });
}

TEST(Window, GetWithOffsetAndPartialLength) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) {
    ByteBuffer local = pattern_buffer(c.rank(), 1024);
    Window win(c, MutableByteSpan(local));
    const int target = 1 - c.rank();

    ByteBuffer dst(100);
    win.lock(target, LockType::Shared);
    win.get(MutableByteSpan(dst), target, 500);
    win.unlock(target);

    const ByteBuffer expect = pattern_buffer(target, 1024);
    EXPECT_EQ(0, std::memcmp(dst.data(), expect.data() + 500, 100));
    win.fence();
  });
}

TEST(Window, GetvReadsEverySegmentInOneTransfer) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) {
    ByteBuffer local = pattern_buffer(c.rank(), 1024);
    Window win(c, MutableByteSpan(local));
    const int target = 1 - c.rank();
    const ByteBuffer expect = pattern_buffer(target, 1024);

    ByteBuffer a(64), b(128), d(32);
    const std::vector<Window::GetSegment> segs = {
        {0, MutableByteSpan(a)},
        {256, MutableByteSpan(b)},
        {900, MutableByteSpan(d)},
    };
    const double t0 = c.clock().now();
    win.lock(target, LockType::Shared);
    win.getv(segs, target);
    win.unlock(target);
    const double vectored = c.clock().now() - t0;

    EXPECT_EQ(0, std::memcmp(a.data(), expect.data(), a.size()));
    EXPECT_EQ(0, std::memcmp(b.data(), expect.data() + 256, b.size()));
    EXPECT_EQ(0, std::memcmp(d.data(), expect.data() + 900, d.size()));

    // The same three ranges as individual gets pay the per-get software
    // overhead three times; the vectored transfer pays it once plus two
    // cheap segment descriptors.
    const double t1 = c.clock().now();
    win.lock(target, LockType::Shared);
    win.get(MutableByteSpan(a), target, 0);
    win.get(MutableByteSpan(b), target, 256);
    win.get(MutableByteSpan(d), target, 900);
    win.unlock(target);
    const double separate = c.clock().now() - t1;
    EXPECT_LT(vectored, separate);
    win.fence();
  });
}

TEST(Window, GetvChargeBytesOverridesTimingOnly) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) {
    ByteBuffer local = pattern_buffer(c.rank(), 512);
    Window win(c, MutableByteSpan(local));
    const int target = 1 - c.rank();

    ByteBuffer small(16), big(16);
    const std::vector<Window::GetSegment> seg_small = {
        {0, MutableByteSpan(small)}};
    const std::vector<Window::GetSegment> seg_big = {
        {0, MutableByteSpan(big)}};
    win.lock(target, LockType::Shared);
    const double t0 = c.clock().now();
    win.getv(seg_small, target);
    const double cheap = c.clock().now() - t0;
    win.getv(seg_big, target, /*charge_bytes=*/1 << 20);
    const double charged = c.clock().now() - t0 - cheap;
    win.unlock(target);
    EXPECT_GT(charged, cheap);   // nominal bytes dominate the timing
    EXPECT_EQ(small, big);       // data plane moved the same 16 bytes
    win.fence();
  });
}

TEST(Window, GetvOutOfBoundsThrows) {
  Runtime rt(2, test_machine());
  EXPECT_THROW(rt.run([](Comm& c) {
                 ByteBuffer local(64);
                 Window win(c, MutableByteSpan(local));
                 ByteBuffer dst(32);
                 const std::vector<Window::GetSegment> segs = {
                     {40, MutableByteSpan(dst)}};  // 40+32 > 64
                 win.lock(0, LockType::Shared);
                 win.getv(segs, 0);
                 win.unlock(0);
               }),
               DataError);
}

TEST(Window, GetvWithoutLockThrows) {
  Runtime rt(2, test_machine());
  EXPECT_THROW(rt.run([](Comm& c) {
                 ByteBuffer local(64);
                 Window win(c, MutableByteSpan(local));
                 ByteBuffer dst(8);
                 const std::vector<Window::GetSegment> segs = {
                     {0, MutableByteSpan(dst)}};
                 win.getv(segs, 0);
               }),
               InternalError);
}

TEST(Window, OutOfBoundsGetThrows) {
  Runtime rt(2, test_machine());
  EXPECT_THROW(rt.run([](Comm& c) {
                 ByteBuffer local(64);
                 Window win(c, MutableByteSpan(local));
                 ByteBuffer dst(32);
                 win.lock(0, LockType::Shared);
                 win.get(MutableByteSpan(dst), 0, 40);  // 40+32 > 64
                 win.unlock(0);
               }),
               DataError);
}

TEST(Window, GetWithoutLockThrows) {
  Runtime rt(2, test_machine());
  EXPECT_THROW(rt.run([](Comm& c) {
                 ByteBuffer local(64);
                 Window win(c, MutableByteSpan(local));
                 ByteBuffer dst(8);
                 win.get(MutableByteSpan(dst), 0, 0);
               }),
               InternalError);
}

TEST(Window, UnevenRegionSizes) {
  Runtime rt(3, test_machine());
  rt.run([](Comm& c) {
    // Rank r exposes (r+1)*100 bytes, like uneven DDStore chunks.
    ByteBuffer local = pattern_buffer(c.rank(), (c.rank() + 1) * 100u);
    Window win(c, MutableByteSpan(local));
    for (int t = 0; t < 3; ++t) {
      EXPECT_EQ(win.size_of(t), static_cast<std::size_t>(t + 1) * 100u);
    }
    ByteBuffer dst(300);
    win.lock(2, LockType::Shared);
    win.get(MutableByteSpan(dst), 2, 0);
    win.unlock(2);
    EXPECT_EQ(dst, pattern_buffer(2, 300));
    win.fence();
  });
}

TEST(Window, ConcurrentSharedReadsFromOneTarget) {
  Runtime rt(8, test_machine());
  rt.run([](Comm& c) {
    ByteBuffer local = pattern_buffer(c.rank(), 4096);
    Window win(c, MutableByteSpan(local));
    win.fence();
    // Everyone hammers rank 0 with shared-lock reads.
    const ByteBuffer expect = pattern_buffer(0, 4096);
    for (int iter = 0; iter < 50; ++iter) {
      ByteBuffer dst(64);
      win.lock(0, LockType::Shared);
      win.get(MutableByteSpan(dst), 0, static_cast<std::size_t>(iter) * 64);
      win.unlock(0);
      EXPECT_EQ(0, std::memcmp(dst.data(),
                               expect.data() + iter * 64, 64));
    }
    win.fence();
  });
}

TEST(Window, PutRequiresExclusiveAndWrites) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) {
    ByteBuffer local(16, std::byte{0});
    Window win(c, MutableByteSpan(local));
    win.fence();
    if (c.rank() == 0) {
      const ByteBuffer src(16, std::byte{0xab});
      win.lock(1, LockType::Exclusive);
      win.put(ByteSpan(src), 1, 0);
      win.unlock(1);
    }
    win.fence();
    if (c.rank() == 1) {
      EXPECT_EQ(local[0], std::byte{0xab});
      EXPECT_EQ(local[15], std::byte{0xab});
    }
  });
}

TEST(Window, PutWithSharedLockThrows) {
  Runtime rt(2, test_machine());
  EXPECT_THROW(rt.run([](Comm& c) {
                 ByteBuffer local(8);
                 Window win(c, MutableByteSpan(local));
                 const ByteBuffer src(8);
                 win.lock(0, LockType::Shared);
                 win.put(ByteSpan(src), 0, 0);
               }),
               InternalError);
}

TEST(Window, AccumulateAddSumsContributions) {
  Runtime rt(4, test_machine());
  rt.run([](Comm& c) {
    std::vector<double> local(4, 0.0);
    Window win(c, MutableByteSpan(
                      reinterpret_cast<std::byte*>(local.data()),
                      local.size() * sizeof(double)));
    win.fence();
    // Every rank accumulates its rank id into rank 0's array.
    const std::vector<double> contrib(4, static_cast<double>(c.rank()));
    win.lock(0, LockType::Exclusive);
    win.accumulate_add(std::span<const double>(contrib), 0, 0);
    win.unlock(0);
    win.fence();
    if (c.rank() == 0) {
      for (double v : local) EXPECT_DOUBLE_EQ(v, 0.0 + 1 + 2 + 3);
    }
  });
}

TEST(Window, RemoteGetChargesMoreVirtualTimeThanLocal) {
  Runtime rt(8, test_machine());
  std::vector<double> local_cost(8), remote_cost(8);
  rt.run([&](Comm& c) {
    ByteBuffer local(1024);
    Window win(c, MutableByteSpan(local));
    win.fence();
    ByteBuffer dst(1024);

    double t0 = c.clock().now();
    win.lock(c.rank(), LockType::Shared);
    win.get(MutableByteSpan(dst), c.rank(), 0);
    win.unlock(c.rank());
    local_cost[c.rank()] = c.clock().now() - t0;

    const int far = (c.rank() + 4) % 8;  // different node (4 GPUs/node)
    t0 = c.clock().now();
    win.lock(far, LockType::Shared);
    win.get(MutableByteSpan(dst), far, 0);
    win.unlock(far);
    remote_cost[c.rank()] = c.clock().now() - t0;
    win.fence();
  });
  for (int r = 0; r < 8; ++r) {
    EXPECT_GT(remote_cost[r], local_cost[r]) << "rank " << r;
  }
}

TEST(Window, WindowOverSubcommunicator) {
  // DDStore's pattern: windows live inside replica groups.
  Runtime rt(8, test_machine());
  rt.run([](Comm& c) {
    Comm group = c.split(c.rank() / 4, c.rank());
    ByteBuffer local = pattern_buffer(c.rank(), 128);
    Window win(group, MutableByteSpan(local));
    // Read from group-neighbour: world rank differs per group.
    const int t = (group.rank() + 1) % group.size();
    ByteBuffer dst(128);
    win.lock(t, LockType::Shared);
    win.get(MutableByteSpan(dst), t, 0);
    win.unlock(t);
    const int expected_world = (c.rank() / 4) * 4 + (c.rank() + 1) % 4;
    EXPECT_EQ(dst, pattern_buffer(expected_world, 128));
    win.fence();
  });
}

TEST(Window, FenceWithOpenEpochThrows) {
  Runtime rt(2, test_machine());
  EXPECT_THROW(rt.run([](Comm& c) {
                 ByteBuffer local(8);
                 Window win(c, MutableByteSpan(local));
                 win.lock(0, LockType::Shared);
                 win.fence();
               }),
               InternalError);
}

TEST(Window, FreeIsCollectiveAndIdempotentPerWindow) {
  Runtime rt(2, test_machine());
  rt.run([](Comm& c) {
    ByteBuffer local(8);
    Window win(c, MutableByteSpan(local));
    win.free();
  });
}

}  // namespace
}  // namespace dds::simmpi
