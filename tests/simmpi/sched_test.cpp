// TurnScheduler unit tests plus deterministic-Runtime integration: token
// rotation in rank order, cooperative yielding, deadlock detection, and
// bitwise-reproducible virtual clocks under the deterministic flag.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "model/machine.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/sched.hpp"

namespace dds::simmpi {
namespace {

TEST(TurnScheduler, ExecutesRanksInOrderRegardlessOfSpawnOrder) {
  constexpr int kRanks = 4;
  ThreadTurnScheduler sched(kRanks);
  std::vector<int> order;  // written only by the token holder
  std::vector<std::thread> threads;
  // Spawn in REVERSE rank order: the token must still rotate 0,1,2,3.
  for (int r = kRanks - 1; r >= 0; --r) {
    threads.emplace_back([&sched, &order, r] {
      sched.begin_turn(r);
      order.push_back(r);
      sched.end_turn();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TurnScheduler, YieldUntilHandsTokenAndResumes) {
  ThreadTurnScheduler sched(2);
  std::atomic<bool> flag{false};
  std::vector<int> order;
  std::thread t0([&] {
    sched.begin_turn(0);
    sched.yield_until([&] { return flag.load(); });
    order.push_back(0);  // must run only after rank 1 set the flag
    sched.end_turn();
  });
  std::thread t1([&] {
    sched.begin_turn(1);
    flag.store(true);
    order.push_back(1);
    sched.end_turn();
  });
  t0.join();
  t1.join();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(TurnScheduler, AllRanksParkedFailsLoudly) {
  ThreadTurnScheduler sched(1);
  std::thread t([&] {
    sched.begin_turn(0);
    // The only rank waits on a predicate nobody can satisfy: the spin cap
    // must convert the silent deadlock into a thrown invariant.
    EXPECT_THROW(sched.yield_until([] { return false; }), InternalError);
    sched.end_turn();
  });
  t.join();
}

/// One deterministic-mode run of a small mixed workload (collectives +
/// ring P2P); returns every rank's final virtual-clock reading.
std::vector<double> run_deterministic(int nranks) {
  Runtime rt(nranks, model::test_machine(), /*seed=*/42,
             /*deterministic=*/true);
  std::vector<double> clocks(static_cast<std::size_t>(nranks), 0.0);
  rt.run([&](Comm& c) {
    const int rank = c.rank();
    double v = static_cast<double>(rank + 1);
    for (int i = 0; i < 3; ++i) v = c.allreduce(v, Op::Sum);
    const std::vector<double> payload(64, v);
    const int next = (rank + 1) % c.size();
    const int prev = (rank + c.size() - 1) % c.size();
    if (rank % 2 == 0) {
      c.send(std::span<const double>(payload), next, /*tag=*/7);
      c.recv<double>(prev, /*tag=*/7);
    } else {
      c.recv<double>(prev, /*tag=*/7);
      c.send(std::span<const double>(payload), next, /*tag=*/7);
    }
    c.barrier();
    clocks[static_cast<std::size_t>(rank)] = c.clock().now();
  });
  return clocks;
}

TEST(DeterministicRuntime, ClocksBitwiseIdenticalAcrossRuns) {
  const auto a = run_deterministic(4);
  const auto b = run_deterministic(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r], b[r]) << "rank " << r;  // exact, not NEAR
    EXPECT_GT(a[r], 0.0) << "rank " << r;
  }
}

TEST(DeterministicRuntime, AbortStillPropagatesUnderScheduler) {
  // A rank throwing mid-program must unwind every peer (some parked in
  // cooperative waits) instead of deadlocking the token rotation.
  Runtime rt(3, model::test_machine(), 42, /*deterministic=*/true);
  EXPECT_THROW(rt.run([&](Comm& c) {
                 if (c.rank() == 1) throw IoError("injected");
                 c.barrier();
                 c.barrier();
               }),
               IoError);
}

}  // namespace
}  // namespace dds::simmpi
