// Stress/interleaving tests: many ranks mixing collectives, sub-
// communicators, point-to-point, and windows without deadlock.
#include <gtest/gtest.h>

#include "simmpi/window.hpp"

namespace dds::simmpi {
namespace {

using model::test_machine;

TEST(Stress, GridSplitRowAndColumnCommunicators) {
  // 4x4 process grid: split into row comms and column comms (a Cartesian
  // decomposition); row-sum + column-sum must reconstruct the global sum.
  static constexpr int kSide = 4;
  Runtime rt(kSide * kSide, test_machine());
  rt.run([](Comm& c) {
    const int row = c.rank() / kSide;
    const int col = c.rank() % kSide;
    Comm row_comm = c.split(row, col);
    Comm col_comm = c.split(col + 100, row);
    EXPECT_EQ(row_comm.size(), kSide);
    EXPECT_EQ(col_comm.size(), kSide);
    EXPECT_EQ(row_comm.rank(), col);
    EXPECT_EQ(col_comm.rank(), row);

    const int row_sum = row_comm.allreduce(c.rank(), Op::Sum);
    const int col_sum = col_comm.allreduce(row_sum, Op::Sum);
    EXPECT_EQ(col_sum, kSide * kSide * (kSide * kSide - 1) / 2);
  });
}

TEST(Stress, InterleavedWindowsAndCollectives) {
  Runtime rt(8, test_machine());
  rt.run([](Comm& c) {
    std::vector<double> local(16, static_cast<double>(c.rank()));
    Window win(c, MutableByteSpan(
                      reinterpret_cast<std::byte*>(local.data()),
                      local.size() * sizeof(double)));
    for (int round = 0; round < 10; ++round) {
      const int target = (c.rank() + round + 1) % c.size();
      std::vector<double> fetched(16);
      win.lock(target, LockType::Shared);
      win.get(MutableByteSpan(reinterpret_cast<std::byte*>(fetched.data()),
                              fetched.size() * sizeof(double)),
              target, 0);
      win.unlock(target);
      EXPECT_DOUBLE_EQ(fetched[7], static_cast<double>(target));
      // A collective between RMA epochs must not deadlock or corrupt.
      const double sum = c.allreduce(fetched[0], Op::Sum);
      EXPECT_GT(sum, -1.0);
      win.fence();
    }
  });
}

TEST(Stress, ManyRanksMixedTraffic) {
  static constexpr int kRanks = 64;
  Runtime rt(kRanks, model::perlmutter());
  rt.run([](Comm& c) {
    // Ring p2p.
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    const std::vector<int> payload = {c.rank()};
    c.send(std::span<const int>(payload), next, 1);
    EXPECT_EQ(c.recv<int>(prev, 1)[0], prev);
    // Collective sandwich.
    const int sum = c.allreduce(1, Op::Sum);
    EXPECT_EQ(sum, kRanks);
    // Nested split down to pairs.
    Comm half = c.split(c.rank() / 32, c.rank());
    Comm quad = half.split(half.rank() / 8, half.rank());
    Comm pair = quad.split(quad.rank() / 2, quad.rank());
    EXPECT_EQ(pair.size(), 2);
    EXPECT_EQ(pair.allreduce(1, Op::Sum), 2);
  });
}

TEST(Stress, RepeatedRunsOnOneRuntime) {
  Runtime rt(6, test_machine());
  for (int round = 0; round < 5; ++round) {
    rt.run([round](Comm& c) {
      EXPECT_EQ(c.allreduce(round, Op::Max), round);
      c.barrier();
    });
  }
  EXPECT_GT(rt.max_clock(), 0.0);
}

TEST(Stress, AbortFlagReleasesPeersWhenOneRankThrows) {
  // One rank fails while everyone else sits in collectives: the abort flag
  // must release the survivors (instead of deadlocking the barrier), the
  // original exception must surface from run(), and the runtime must stay
  // usable afterwards.
  Runtime rt(8, test_machine());
  EXPECT_THROW(
      rt.run([](Comm& c) {
        c.barrier();  // everyone reaches the epoch together
        if (c.rank() == 3) {
          throw IoError("rank 3 lost its dataset");
        }
        // Survivors head into more collectives that rank 3 will never join.
        for (int round = 0; round < 50; ++round) {
          c.barrier();
          (void)c.allreduce(round, Op::Sum);
        }
      }),
      IoError);

  // A failed run must not poison the next one.
  rt.run([](Comm& c) {
    EXPECT_EQ(c.allreduce(1, Op::Sum), c.size());
    c.barrier();
  });
}

TEST(Stress, AbortPropagatesThroughSubCommunicatorsAndWindows) {
  Runtime rt(8, test_machine());
  EXPECT_THROW(
      rt.run([](Comm& c) {
        Comm half = c.split(c.rank() / 4, c.rank());
        std::vector<double> local(8, 1.0);
        Window win(c, MutableByteSpan(
                          reinterpret_cast<std::byte*>(local.data()),
                          local.size() * sizeof(double)));
        win.fence();
        if (c.rank() == 5) {
          throw DataError("rank 5 found a corrupt block");
        }
        for (int round = 0; round < 50; ++round) {
          (void)half.allreduce(1, Op::Sum);
          win.fence();
        }
      }),
      DataError);
  rt.run([](Comm& c) { EXPECT_EQ(c.allreduce(2, Op::Max), 2); });
}

TEST(Stress, WindowAccumulateUnderContention) {
  // All ranks accumulate into rank 0 concurrently under exclusive locks;
  // the sum must be exact (no lost updates).
  static constexpr int kRanks = 8;
  static constexpr int kRounds = 25;
  Runtime rt(kRanks, test_machine());
  rt.run([](Comm& c) {
    std::vector<double> local(4, 0.0);
    Window win(c, MutableByteSpan(
                      reinterpret_cast<std::byte*>(local.data()),
                      local.size() * sizeof(double)));
    win.fence();
    const std::vector<double> one(4, 1.0);
    for (int i = 0; i < kRounds; ++i) {
      win.lock(0, LockType::Exclusive);
      win.accumulate_add(std::span<const double>(one), 0, 0);
      win.unlock(0);
    }
    win.fence();
    if (c.rank() == 0) {
      for (const double v : local) {
        EXPECT_DOUBLE_EQ(v, static_cast<double>(kRanks * kRounds));
      }
    }
  });
}

}  // namespace
}  // namespace dds::simmpi
