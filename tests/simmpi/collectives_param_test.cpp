// Property sweep: collective semantics across rank counts, including
// non-powers-of-two (the log-depth cost model must not affect results).
#include <gtest/gtest.h>

#include <numeric>

#include "simmpi/runtime.hpp"

namespace dds::simmpi {
namespace {

using model::test_machine;

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, AllreduceSumMatchesClosedForm) {
  const int n = GetParam();
  Runtime rt(n, test_machine());
  rt.run([&](Comm& c) {
    const long total = c.allreduce(static_cast<long>(c.rank()) + 1, Op::Sum);
    EXPECT_EQ(total, static_cast<long>(n) * (n + 1) / 2);
    EXPECT_EQ(c.allreduce(c.rank(), Op::Max), n - 1);
    EXPECT_EQ(c.allreduce(c.rank(), Op::Min), 0);
  });
}

TEST_P(CollectiveSweep, AllgatherOrderedByRank) {
  const int n = GetParam();
  Runtime rt(n, test_machine());
  rt.run([&](Comm& c) {
    const auto all = c.allgather(c.rank() * 3);
    ASSERT_EQ(static_cast<int>(all.size()), n);
    for (int r = 0; r < n; ++r) EXPECT_EQ(all[r], 3 * r);
  });
}

TEST_P(CollectiveSweep, AllgathervConcatenationComplete) {
  const int n = GetParam();
  Runtime rt(n, test_machine());
  rt.run([&](Comm& c) {
    // Rank r contributes r+1 copies of r.
    std::vector<int> mine(static_cast<std::size_t>(c.rank()) + 1, c.rank());
    std::vector<std::size_t> counts;
    const auto all = c.allgatherv(std::span<const int>(mine), &counts);
    EXPECT_EQ(all.size(), static_cast<std::size_t>(n) * (n + 1) / 2);
    std::size_t cursor = 0;
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(counts[static_cast<std::size_t>(r)],
                static_cast<std::size_t>(r) + 1);
      for (std::size_t k = 0; k <= static_cast<std::size_t>(r); ++k) {
        EXPECT_EQ(all[cursor++], r);
      }
    }
  });
}

TEST_P(CollectiveSweep, BcastFromEveryRoot) {
  const int n = GetParam();
  Runtime rt(n, test_machine());
  rt.run([&](Comm& c) {
    for (int root = 0; root < n; ++root) {
      std::uint64_t token = c.rank() == root
                                ? 1000 + static_cast<std::uint64_t>(root)
                                : 0;
      c.bcast(&token, 1, root);
      EXPECT_EQ(token, 1000 + static_cast<std::uint64_t>(root));
    }
  });
}

TEST_P(CollectiveSweep, GathervOnlyRootReceives) {
  const int n = GetParam();
  Runtime rt(n, test_machine());
  rt.run([&](Comm& c) {
    const std::vector<double> mine = {static_cast<double>(c.rank())};
    const auto got = c.gatherv(std::span<const double>(mine), /*root=*/0);
    if (c.rank() == 0) {
      ASSERT_EQ(static_cast<int>(got.size()), n);
      for (int r = 0; r < n; ++r) EXPECT_DOUBLE_EQ(got[r], r);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST_P(CollectiveSweep, SplitEvenOddGroups) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  Runtime rt(n, test_machine());
  rt.run([&](Comm& c) {
    Comm group = c.split(c.rank() % 2, c.rank());
    const int expected = (n + (c.rank() % 2 == 0 ? 1 : 0)) / 2;
    EXPECT_EQ(group.size(), expected);
    // World ranks in the group all share my parity.
    const auto members = group.allgather(c.rank());
    for (const int m : members) EXPECT_EQ(m % 2, c.rank() % 2);
  });
}

TEST_P(CollectiveSweep, SharePublishesRootObject) {
  const int n = GetParam();
  Runtime rt(n, test_machine());
  rt.run([&](Comm& c) {
    const auto obj = c.share<std::vector<int>>(
        n - 1, [&] { return std::make_shared<std::vector<int>>(5, n); });
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(obj->size(), 5u);
    EXPECT_EQ((*obj)[0], n);
    // Everyone holds the same instance (in-process sharing).
    const auto ptrs = c.allgather(reinterpret_cast<std::uintptr_t>(obj.get()));
    for (const auto p : ptrs) EXPECT_EQ(p, ptrs[0]);
  });
}

TEST_P(CollectiveSweep, BarrierLeavesClocksEqual) {
  const int n = GetParam();
  Runtime rt(n, test_machine());
  rt.run([&](Comm& c) {
    c.clock().advance(1e-3 * (c.rank() + 1));
    c.barrier();
    const auto clocks = c.allgather(c.clock().now());
    for (const double t : clocks) EXPECT_DOUBLE_EQ(t, clocks[0]);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 13, 16, 32),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace dds::simmpi
