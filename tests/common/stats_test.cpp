#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dds {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng r(3);
  for (int i = 0; i < 500; ++i) {
    const double x = r.normal(5.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(LatencyRecorder, PercentilesOnKnownData) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(static_cast<double>(i));
  EXPECT_NEAR(rec.percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(rec.percentile(100), 100.0, 1e-12);
  EXPECT_NEAR(rec.median(), 50.5, 1e-12);
  EXPECT_NEAR(rec.percentile(95), 95.05, 1e-9);
  EXPECT_NEAR(rec.percentile(99), 99.01, 1e-9);
}

TEST(LatencyRecorder, SingleSample) {
  LatencyRecorder rec;
  rec.add(0.42);
  EXPECT_DOUBLE_EQ(rec.median(), 0.42);
  EXPECT_DOUBLE_EQ(rec.percentile(99), 0.42);
  EXPECT_DOUBLE_EQ(rec.min(), 0.42);
  EXPECT_DOUBLE_EQ(rec.max(), 0.42);
}

TEST(LatencyRecorder, EmptyThrows) {
  LatencyRecorder rec;
  EXPECT_THROW(rec.median(), InternalError);
}

TEST(LatencyRecorder, CdfAt) {
  LatencyRecorder rec;
  for (int i = 1; i <= 10; ++i) rec.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(rec.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(rec.cdf_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(rec.cdf_at(10.0), 1.0);
}

TEST(LatencyRecorder, CdfCurveMonotone) {
  LatencyRecorder rec;
  Rng r(8);
  for (int i = 0; i < 1000; ++i) rec.add(r.exponential(1.0));
  const auto curve = rec.cdf_curve(32);
  ASSERT_EQ(curve.size(), 32u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(LatencyRecorder, MergeCombinesSamples) {
  LatencyRecorder a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Geomean, KnownValues) {
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_THROW(geomean({1.0, 0.0}), InternalError);
}

}  // namespace
}  // namespace dds
