#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace dds {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteBuffer buf;
  BinaryWriter w(buf);
  w.write<std::uint32_t>(0xdeadbeef);
  w.write<double>(3.5);
  w.write<std::int8_t>(-7);

  BinaryReader r(buf);
  EXPECT_EQ(r.read<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.5);
  EXPECT_EQ(r.read<std::int8_t>(), -7);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, RoundTripStringAndVector) {
  ByteBuffer buf;
  BinaryWriter w(buf);
  w.write_string("hello ddstore");
  w.write_vector(std::vector<float>{1.0f, -2.0f, 0.5f});
  w.write_string("");

  BinaryReader r(buf);
  EXPECT_EQ(r.read_string(), "hello ddstore");
  const auto v = r.read_vector<float>();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_FLOAT_EQ(v[1], -2.0f);
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, TruncationThrowsDataError) {
  ByteBuffer buf;
  BinaryWriter w(buf);
  w.write<std::uint64_t>(100);  // claims a 100-byte string follows
  BinaryReader r(buf);
  EXPECT_THROW(r.read_string(), DataError);
}

TEST(Bytes, ReadPastEndThrows) {
  ByteBuffer buf(4);
  BinaryReader r(buf);
  EXPECT_NO_THROW(r.read<std::uint32_t>());
  EXPECT_THROW(r.read<std::uint8_t>(), DataError);
}

TEST(Bytes, SkipAndRemaining) {
  ByteBuffer buf(16);
  BinaryReader r(buf);
  r.skip(10);
  EXPECT_EQ(r.remaining(), 6u);
  EXPECT_EQ(r.position(), 10u);
  EXPECT_THROW(r.skip(7), DataError);
}

TEST(Bytes, ReadBytesReturnsView) {
  ByteBuffer buf;
  BinaryWriter w(buf);
  w.write<std::uint8_t>(1);
  w.write<std::uint8_t>(2);
  w.write<std::uint8_t>(3);
  BinaryReader r(buf);
  const auto s = r.read_bytes(2);
  EXPECT_EQ(std::to_integer<int>(s[0]), 1);
  EXPECT_EQ(std::to_integer<int>(s[1]), 2);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Bytes, EmptyVectorRoundTrip) {
  ByteBuffer buf;
  BinaryWriter w(buf);
  w.write_vector(std::vector<std::uint64_t>{});
  BinaryReader r(buf);
  EXPECT_TRUE(r.read_vector<std::uint64_t>().empty());
}

}  // namespace
}  // namespace dds
