// MetricsRegistry contracts: registration-order iteration, stable
// references, preserve-on-reset semantics, and re-registration rules —
// everything DDStoreStats views, epoch-delta diffing, and the bench JSON
// serializers rely on.
#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dds {
namespace {

TEST(MetricsRegistryTest, IterationFollowsRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("zulu");
  reg.counter("alpha");
  reg.counter("mike");
  const std::vector<std::string> expected = {"zulu", "alpha", "mike"};
  EXPECT_EQ(reg.counter_names(), expected);
  EXPECT_EQ(reg.num_counters(), 3u);
}

TEST(MetricsRegistryTest, ValuesAlignWithNamesPositionally) {
  MetricsRegistry reg;
  reg.counter("a") += 10;
  reg.counter("b") += 20;
  reg.counter("c") += 30;
  const auto names = reg.counter_names();
  const auto values = reg.counter_values();
  ASSERT_EQ(names.size(), values.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(values[i], reg.counter_value(names[i]));
  }
  EXPECT_EQ(values, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(MetricsRegistryTest, ReferencesStayValidAsRegistryGrows) {
  MetricsRegistry reg;
  MetricsRegistry::Counter& first = reg.counter("first");
  MetricsRegistry::Gauge& g = reg.gauge("g");
  // Force many deque/map insertions; the early references must not move.
  for (int i = 0; i < 1000; ++i) {
    reg.counter("filler_" + std::to_string(i));
    reg.gauge("gfiller_" + std::to_string(i));
  }
  ++first;
  first += 4;
  g.set(2.5);
  EXPECT_EQ(reg.counter_value("first"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 2.5);
}

TEST(MetricsRegistryTest, UnregisteredNamesReadAsZero) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.has_counter("ghost"));
  EXPECT_EQ(reg.counter_value("ghost"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("ghost"), 0.0);
  EXPECT_EQ(reg.find_latency("ghost"), nullptr);
}

TEST(MetricsRegistryTest, ReopeningReturnsTheSameEntry) {
  MetricsRegistry reg;
  MetricsRegistry::Counter& a = reg.counter("shared");
  MetricsRegistry::Counter& b = reg.counter("shared");
  EXPECT_EQ(&a, &b);
  ++a;
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(reg.num_counters(), 1u);
}

TEST(MetricsRegistryTest, ReopeningWithDifferentPreserveFlagThrows) {
  MetricsRegistry reg;
  reg.counter("pinned", /*preserve_on_reset=*/true);
  EXPECT_THROW(reg.counter("pinned", /*preserve_on_reset=*/false),
               InternalError);
  reg.gauge("pg", /*preserve_on_reset=*/true);
  EXPECT_THROW(reg.gauge("pg", /*preserve_on_reset=*/false), InternalError);
}

TEST(MetricsRegistryTest, ResetZeroesAllButPreservedEntries) {
  MetricsRegistry reg;
  reg.counter("volatile_c") += 7;
  reg.counter("preserved_c", /*preserve_on_reset=*/true) += 9;
  reg.gauge("volatile_g").set(1.0);
  reg.gauge("preserved_g", /*preserve_on_reset=*/true).set(3.0);
  reg.latency("lat").add(0.5);

  reg.reset();

  EXPECT_EQ(reg.counter_value("volatile_c"), 0u);
  EXPECT_EQ(reg.counter_value("preserved_c"), 9u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("volatile_g"), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("preserved_g"), 3.0);
  ASSERT_NE(reg.find_latency("lat"), nullptr);
  EXPECT_EQ(reg.find_latency("lat")->count(), 0u);
}

TEST(MetricsRegistryTest, ResetKeepsLayoutIntact) {
  // A reset must not disturb the registration-order layout that cross-rank
  // elementwise sums depend on.
  MetricsRegistry reg;
  reg.counter("one") += 1;
  reg.counter("two") += 2;
  const auto names_before = reg.counter_names();
  reg.reset();
  EXPECT_EQ(reg.counter_names(), names_before);
  reg.counter("two") += 5;
  EXPECT_EQ(reg.counter_values(), (std::vector<std::uint64_t>{0, 5}));
}

}  // namespace
}  // namespace dds
