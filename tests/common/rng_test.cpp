#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dds {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamsAreIndependentAndDeterministic) {
  Rng base(7);
  Rng s0 = base.stream(0);
  Rng s1 = base.stream(1);
  Rng s0b = Rng(7).stream(0);
  EXPECT_EQ(s0.next(), s0b.next());
  EXPECT_NE(s0.next(), s1.next());
}

TEST(Rng, UniformInRange) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = r.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng r(4);
  // n=3: all residues should occur with roughly equal frequency.
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) counts[r.uniform_u64(3)]++;
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng r(13);
  const auto p = r.permutation(257);
  std::set<std::uint64_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, PermutationShuffles) {
  Rng r(17);
  const auto p = r.permutation(1000);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) fixed += (p[i] == i);
  EXPECT_LT(fixed, 20u);  // expected ~1 fixed point
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng r(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace dds
