// EventTracer / Span / Chrome-JSON export unit tests: ring overflow
// semantics, RAII span recording, exporter structure and determinism, and
// the per-category summary rollup.
#include <gtest/gtest.h>

#include "common/tracing/export.hpp"
#include "common/tracing/tracer.hpp"
#include "model/clock.hpp"

namespace dds::tracing {
namespace {

TEST(EventTracer, RecordsInOrderBelowCapacity) {
  EventTracer tr(0, 8);
  tr.record(Category::Fetch, "a", 1.0, 2.0);
  tr.instant(Category::Cache, "b", 3.0);
  EXPECT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr.dropped(), 0u);
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_EQ(events[0].t0, 1.0);
  EXPECT_EQ(events[0].t1, 2.0);
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_EQ(events[1].t0, events[1].t1);  // instant
  EXPECT_LT(events[0].seq, events[1].seq);
}

TEST(EventTracer, OverflowDropsOldestAndCounts) {
  EventTracer tr(0, 4);
  const char* names[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (int i = 0; i < 6; ++i) {
    tr.record(Category::Train, names[i], i, i + 0.5);
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 2u);  // e0, e1 fell off
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: the retained window is the most recent 4 events.
  EXPECT_STREQ(events[0].name, "e2");
  EXPECT_STREQ(events[1].name, "e3");
  EXPECT_STREQ(events[2].name, "e4");
  EXPECT_STREQ(events[3].name, "e5");
}

TEST(EventTracer, ClearResetsRingAndCounters) {
  EventTracer tr(0, 2);
  for (int i = 0; i < 5; ++i) tr.instant(Category::Verify, "x", i);
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
  tr.instant(Category::Verify, "y", 9.0);
  EXPECT_EQ(tr.snapshot().front().seq, 0u);  // seq restarts after clear
}

TEST(Span, RecordsOnDestructionWithMutableArgs) {
  EventTracer tr(3, 8);
  model::VirtualClock clock;
  clock.advance(1.5);
  {
    Span span(&tr, clock, Category::Transport, "rma_get");
    clock.advance(0.25);
    span.args().bytes = 4096;
    span.args().target = 7;
  }
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].t0, 1.5);
  EXPECT_DOUBLE_EQ(events[0].t1, 1.75);
  EXPECT_EQ(events[0].args.bytes, 4096);
  EXPECT_EQ(events[0].args.target, 7);
  EXPECT_EQ(events[0].args.sample_id, -1);  // unset sentinel survives
}

TEST(Span, NullTracerIsInert) {
  model::VirtualClock clock;
  Span span(nullptr, clock, Category::Train, "noop");
  span.args().bytes = 1;  // still writable, simply discarded
}

std::vector<const EventTracer*> view(const EventTracer& a) { return {&a}; }

TEST(ChromeExport, EmitsValidStructure) {
  EventTracer tr(0, 8);
  tr.record(Category::Fetch, "plan", 0.001, 0.002);
  EventArgs args;
  args.bytes = 128;
  args.target = 2;
  tr.record(Category::Transport, "rma_get", 0.002, 0.004, args);
  const std::string json = to_chrome_json(view(tr));

  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"transport\""), std::string::npos);
  // 0.002 s -> 2000.000 us; durations likewise in us.
  EXPECT_NE(json.find("\"ts\":2000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000.000"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":128"), std::string::npos);
  EXPECT_NE(json.find("\"target\":2"), std::string::npos);
  // Unset args are omitted, not serialized as -1.
  EXPECT_EQ(json.find("\"sample_id\""), std::string::npos);
  EXPECT_EQ(json.find("-1"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ChromeExport, OuterSpansPrecedeContainedSpans) {
  // Same rank, same t0: the longer (outer) span must sort first so
  // timeline viewers nest the shorter one inside it.
  EventTracer tr(0, 8);
  tr.record(Category::Fetch, "inner", 1.0, 2.0);
  tr.record(Category::Fetch, "outer", 1.0, 5.0);
  const std::string json = to_chrome_json(view(tr));
  EXPECT_LT(json.find("\"name\":\"outer\""), json.find("\"name\":\"inner\""));
}

TEST(ChromeExport, MergesRanksDeterministically) {
  EventTracer a(0, 8), b(1, 8);
  a.record(Category::Train, "fwd", 2.0, 3.0);
  b.record(Category::Train, "fwd", 1.0, 2.0);
  const std::vector<const EventTracer*> tracers = {&a, &b};
  const std::string first = to_chrome_json(tracers);
  // Rank 1's earlier event sorts before rank 0's later one.
  EXPECT_LT(first.find("\"tid\":1,"), first.rfind("\"tid\":0,"));
  // Export is a pure function of the streams: identical bytes on re-export.
  EXPECT_EQ(first, to_chrome_json(tracers));
}

TEST(ChromeExport, EscapesControlAndQuoteCharacters) {
  EventTracer tr(0, 4);
  tr.record(Category::Train, "we\"ird\n", 0.0, 1.0);
  const std::string json = to_chrome_json(view(tr));
  EXPECT_NE(json.find("we\\\"ird\\u000a"), std::string::npos);
}

TEST(Summarize, RollsUpByCategoryAndName) {
  EventTracer a(0, 8), b(1, 8);
  EventArgs args;
  args.bytes = 10;
  a.record(Category::Transport, "rma_get", 0.0, 1.0, args);
  b.record(Category::Transport, "rma_get", 0.0, 2.0, args);
  a.record(Category::Cache, "cache_hit", 0.0, 0.5);
  const auto rows = summarize({&a, &b});
  ASSERT_EQ(rows.size(), 2u);
  // Ordered by category (Cache < Transport) then name.
  EXPECT_EQ(rows[0].category, Category::Cache);
  EXPECT_EQ(rows[0].name, "cache_hit");
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[1].category, Category::Transport);
  EXPECT_EQ(rows[1].count, 2u);
  EXPECT_DOUBLE_EQ(rows[1].seconds, 3.0);
  EXPECT_EQ(rows[1].bytes, 20);
  const std::string table = summary_table(rows);
  EXPECT_NE(table.find("transport"), std::string::npos);
  EXPECT_NE(table.find("rma_get"), std::string::npos);
}

}  // namespace
}  // namespace dds::tracing
