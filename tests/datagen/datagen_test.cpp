#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "datagen/dataset.hpp"
#include "datagen/ising.hpp"
#include "datagen/molecule.hpp"

namespace dds::datagen {
namespace {

TEST(DatasetSpec, Table1Values) {
  const auto ising = dataset_spec(DatasetKind::Ising);
  EXPECT_EQ(ising.full_num_graphs, 1'200'000u);
  EXPECT_NEAR(ising.avg_nodes_per_graph(), 125.8, 0.1);
  EXPECT_EQ(ising.nominal_pff_sample_bytes(), 20'000u);

  const auto aisd = dataset_spec(DatasetKind::AisdHomoLumo);
  EXPECT_EQ(aisd.full_num_graphs, 10'500'000u);
  EXPECT_NEAR(aisd.avg_nodes_per_graph(), 52.4, 0.1);
  EXPECT_NEAR(aisd.avg_edges_per_graph(), 104.8, 0.1);

  const auto smooth = dataset_spec(DatasetKind::AisdExSmooth);
  EXPECT_EQ(smooth.target_dim, 37'500u);
  // 1.5 TB container / 10.5M samples ~ 143 KB per sample.
  EXPECT_NEAR(static_cast<double>(smooth.nominal_cff_sample_bytes()),
              142'857.0, 1.0);
}

TEST(IsingDataset, StructureMatchesLattice) {
  IsingDataset ds(10, 42);
  const auto s = ds.make(0);
  EXPECT_EQ(s.num_nodes, 125u);
  EXPECT_EQ(s.num_edges(), 750u);  // 3 bonds/site, periodic, both directions
  EXPECT_EQ(s.node_feature_dim, 2u);
  EXPECT_EQ(s.y.size(), 1u);
  EXPECT_NO_THROW(s.validate());
}

TEST(IsingDataset, SpinsAreBinaryAndEnergyMatchesHamiltonian) {
  IsingDataset ds(5, 1);
  const auto s = ds.make(3);
  std::vector<float> spins(s.num_nodes);
  for (std::uint32_t i = 0; i < s.num_nodes; ++i) {
    spins[i] = s.node_features[2 * i];
    EXPECT_TRUE(spins[i] == 1.0f || spins[i] == -1.0f);
  }
  EXPECT_NEAR(s.y[0], ds.energy(spins), 1e-6);
}

TEST(IsingDataset, AllUpConfigurationHasEnergyMinusJ) {
  IsingDataset ds(1, 0);
  const std::vector<float> up(125, 1.0f);
  EXPECT_DOUBLE_EQ(ds.energy(up), -1.0);  // ferromagnetic ground state
  std::vector<float> alternating(125);
  // Checkerboard on odd lattice is frustrated but energy must be in [-1,1].
  for (std::size_t i = 0; i < 125; ++i) alternating[i] = (i % 2) ? 1.f : -1.f;
  const double e = ds.energy(alternating);
  EXPECT_GE(e, -1.0);
  EXPECT_LE(e, 1.0);
}

TEST(IsingDataset, DeterministicPerIndex) {
  IsingDataset a(100, 7), b(100, 7);
  EXPECT_EQ(a.make(42), b.make(42));
  EXPECT_NE(a.make(42), a.make(43));
}

TEST(IsingDataset, OutOfRangeThrows) {
  IsingDataset ds(10, 0);
  EXPECT_THROW(ds.make(10), InternalError);
}

TEST(Molecule, SizesWithinPaperRange) {
  Rng rng(5);
  RunningStats nodes;
  for (int i = 0; i < 500; ++i) {
    const Molecule m = generate_molecule(rng);
    EXPECT_GE(m.num_atoms(), kMinHeavyAtoms);
    EXPECT_LE(m.num_atoms(), kMaxHeavyAtoms);
    nodes.add(m.num_atoms());
  }
  // Paper average is 52.4 atoms/molecule; our generator targets ~49.
  EXPECT_GT(nodes.mean(), 40.0);
  EXPECT_LT(nodes.mean(), 58.0);
}

TEST(Molecule, EdgesPerNodeMatchesTable1Ratio) {
  Rng rng(6);
  double nodes = 0, edges = 0;
  for (int i = 0; i < 300; ++i) {
    const Molecule m = generate_molecule(rng);
    nodes += m.num_atoms();
    edges += 2.0 * static_cast<double>(m.bond_a.size());  // directed
  }
  // Table 1: 1.1B directed edges / 550.6M nodes ~ 2.0 per node.
  EXPECT_NEAR(edges / nodes, 2.0, 0.15);
}

TEST(Molecule, MostAtomsAreCarbon) {
  Rng rng(7);
  double carbon = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    const Molecule m = generate_molecule(rng);
    for (auto t : m.atom_type) carbon += (t == 0);
    total += m.num_atoms();
  }
  EXPECT_NEAR(carbon / total, 0.70, 0.05);
}

TEST(Molecule, SampleConversionIsValid) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const Molecule m = generate_molecule(rng);
    const auto s = molecule_to_sample(m, static_cast<std::uint64_t>(i));
    EXPECT_NO_THROW(s.validate());
    EXPECT_EQ(s.node_feature_dim, kMoleculeFeatureDim);
    EXPECT_EQ(s.num_edges(), 2 * m.bond_a.size());
  }
}

TEST(HomoLumoGap, TrendsWithStructure) {
  Rng rng(9);
  // Gap must decrease with molecule size on average.
  RunningStats small_gaps, large_gaps;
  for (int i = 0; i < 2000; ++i) {
    Rng r = rng.stream(static_cast<std::uint64_t>(i));
    const Molecule m = generate_molecule(r);
    const double g = homo_lumo_gap(m, r);
    EXPECT_GT(g, 0.0);
    EXPECT_LT(g, 8.0);
    (m.num_atoms() < 30 ? small_gaps : large_gaps).add(g);
  }
  EXPECT_GT(small_gaps.mean(), large_gaps.mean());
}

TEST(UvPeaks, SortedAndNonNegative) {
  Rng rng(10);
  const Molecule m = generate_molecule(rng);
  std::vector<float> pos, inten;
  uv_peaks(m, rng, pos, inten);
  ASSERT_EQ(pos.size(), kNumUvPeaks);
  ASSERT_EQ(inten.size(), kNumUvPeaks);
  for (std::size_t k = 1; k < pos.size(); ++k) EXPECT_GE(pos[k], pos[k - 1]);
  for (float v : inten) EXPECT_GE(v, 0.0f);
  for (float p : pos) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(SmoothSpectrum, MassConservedUnderSmoothing) {
  // A Gaussian kernel redistributes peak mass; the integral of the smoothed
  // spectrum ~ sum of intensities * sigma * sqrt(2 pi) / dx spacing.
  const std::vector<float> pos = {0.5f};
  const std::vector<float> inten = {2.0f};
  const std::uint32_t bins = 10'001;
  const auto spec = smooth_spectrum(pos, inten, bins, 0.01);
  double integral = 0;
  for (float v : spec) integral += v;
  integral /= (bins - 1);  // dx
  EXPECT_NEAR(integral, 2.0 * 0.01 * std::sqrt(2.0 * 3.14159265), 1e-3);
}

TEST(SmoothSpectrum, PeakLocationPreserved) {
  const std::vector<float> pos = {0.25f};
  const std::vector<float> inten = {1.0f};
  const auto spec = smooth_spectrum(pos, inten, 101, 0.01);
  std::size_t argmax = 0;
  for (std::size_t b = 1; b < spec.size(); ++b) {
    if (spec[b] > spec[argmax]) argmax = b;
  }
  EXPECT_EQ(argmax, 25u);
}

TEST(SmoothSpectrum, FarBinsAreZero) {
  const auto spec = smooth_spectrum({0.1f}, {1.0f}, 1001, 0.01);
  EXPECT_GT(spec[100], 0.5f);
  EXPECT_FLOAT_EQ(spec[900], 0.0f);  // 80 sigma away
}

TEST(Datasets, FactoryProducesCorrectTargetDims) {
  EXPECT_EQ(make_dataset(DatasetKind::Ising, 4, 1)->make(0).y.size(), 1u);
  EXPECT_EQ(make_dataset(DatasetKind::AisdHomoLumo, 4, 1)->make(0).y.size(),
            1u);
  EXPECT_EQ(make_dataset(DatasetKind::AisdExDiscrete, 4, 1)->make(0).y.size(),
            100u);
  EXPECT_EQ(make_dataset(DatasetKind::AisdExSmooth, 4, 1)->make(0).y.size(),
            128u);  // scaled-down actual bins
  EXPECT_EQ(
      make_dataset(DatasetKind::AisdExSmoothSmall, 4, 1)->make(0).y.size(),
      351u);
}

TEST(Datasets, MoleculeTopologyIdenticalAcrossTargetVariants) {
  // The three AISD variants describe the same molecules with different
  // labels; with a common seed, sample i must have identical topology.
  const auto homo = make_dataset(DatasetKind::AisdHomoLumo, 8, 5);
  const auto disc = make_dataset(DatasetKind::AisdExDiscrete, 8, 5);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto a = homo->make(i);
    const auto b = disc->make(i);
    EXPECT_EQ(a.num_nodes, b.num_nodes);
    EXPECT_EQ(a.edge_src, b.edge_src);
    EXPECT_EQ(a.node_features, b.node_features);
  }
}

TEST(Datasets, SamplesSerializableRoundTrip) {
  for (const auto kind : kAllDatasetKinds) {
    const auto ds = make_dataset(kind, 3, 11);
    for (std::uint64_t i = 0; i < 3; ++i) {
      const auto s = ds->make(i);
      EXPECT_EQ(graph::GraphSample::deserialize(s.to_bytes()), s);
    }
  }
}

}  // namespace
}  // namespace dds::datagen
